package power

import (
	"fmt"

	"sdds/internal/disk"
	"sdds/internal/probe"
	"sdds/internal/sim"
)

// Kind identifies one of the power-management mechanisms from §II.
type Kind int

// Policy kinds.
const (
	// KindDefault applies no power management (the paper's Default Scheme).
	KindDefault Kind = iota + 1
	// KindSimple spins the disk down after a fixed idle timeout.
	KindSimple
	// KindPredictive predicts the idle length, spins down immediately when
	// the prediction justifies it, and spins back up ahead of time.
	KindPredictive
	// KindHistory (multi-speed) predicts the idle length and drops to the
	// most appropriate RPM, returning to full speed ahead of time.
	KindHistory
	// KindStaggered (multi-speed) steps down one RPM level per continued
	// idle interval and ramps back to full speed when a request arrives.
	KindStaggered
)

var kindNames = map[Kind]string{
	KindDefault:    "default",
	KindSimple:     "simple",
	KindPredictive: "prediction-based",
	KindHistory:    "history-based",
	KindStaggered:  "staggered",
}

// String returns the policy name used in the paper's figures.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "invalid"
}

// AllKinds lists the four managed policies plus Default, in figure order.
func AllKinds() []Kind {
	return []Kind{KindDefault, KindSimple, KindPredictive, KindHistory, KindStaggered}
}

// ManagedKinds lists the four power-saving mechanisms (Fig. 12(c)/(d) bars).
func ManagedKinds() []Kind {
	return []Kind{KindSimple, KindPredictive, KindHistory, KindStaggered}
}

// ParseKind maps a policy name (as printed by Kind.String, plus common
// short forms) back to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "default", "none":
		return KindDefault, nil
	case "simple", "spindown":
		return KindSimple, nil
	case "prediction-based", "prediction", "predictive":
		return KindPredictive, nil
	case "history-based", "history":
		return KindHistory, nil
	case "staggered":
		return KindStaggered, nil
	}
	return 0, fmt.Errorf("power: unknown policy %q", s)
}

// Config tunes the policies. Zero fields take the paper's defaults
// (§V-A): 50 ms spin-down/stagger timeout and predictions bounding the
// performance penalty.
type Config struct {
	// Kind selects the mechanism.
	Kind Kind
	// Timeout is the Simple policy's idle wait before spinning down and the
	// Staggered policy's wait between speed steps (x and x1 in the paper;
	// both default to 50 ms).
	Timeout sim.Duration
	// Alpha is the EWMA smoothing factor for idle-length prediction.
	Alpha float64
	// BreakEvenScale multiplies the energy break-even time used by the
	// Predictive policy as its spin-down threshold. The default of 0.5
	// accepts predictions somewhat below exact break-even: the EWMA
	// under-predicts long idle phases, and acting on those predictions is
	// what makes the mechanism pay off (§II).
	BreakEvenScale float64
	// HistoryMargin scales the round-trip RPM transition time when mapping
	// a predicted idle length to a speed level; larger margins are more
	// conservative (bounding the performance penalty, §V-A's 4%).
	HistoryMargin float64
	// Cooldown is how long the Simple policy waits after an aborted
	// spin-down (a request arrived mid-transition) before attempting
	// another. Without it the fixed 50 ms timeout thrashes on workloads
	// with many sub-break-even idle periods; adaptive spin-down of this
	// kind follows Douglis et al. [19]. Defaults to 60 s.
	Cooldown sim.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = sim.MilliToTime(50)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.7
	}
	if c.BreakEvenScale == 0 {
		c.BreakEvenScale = 0.5
	}
	if c.HistoryMargin == 0 {
		c.HistoryMargin = 4.0
	}
	if c.Cooldown == 0 {
		c.Cooldown = 60 * sim.Second
	}
	return c
}

// Stats counts a policy's prediction outcomes over a run. A wrong
// prediction is a request that found the disk mid-transition or below full
// speed (the performance penalty §V attributes to each scheme); a
// pre-activation is an ahead-of-time wake or ramp timer that fired while
// the disk was still idle.
type Stats struct {
	WrongPredictions int64
	PreActivations   int64
}

// StatsReporter is implemented by policies that track prediction outcomes.
// The Default policy makes no predictions and does not implement it.
type StatsReporter interface {
	PolicyStats() Stats
}

// Policy is a per-disk power manager. It is installed as the disk's
// listener by Attach.
type Policy interface {
	disk.Listener
	// Kind returns the mechanism this policy implements.
	Kind() Kind
	// Attach binds the policy to its disk and installs the listener.
	Attach(d *disk.Disk)
}

// engageIfIdle treats attach time as an idle start so disks that receive no
// requests at all (e.g. lightly used RAID members) are still managed from
// t=0 rather than burning full idle power until their first request.
func engageIfIdle(l disk.Listener, d *disk.Disk, eng *sim.Engine) {
	if d.State() == disk.StateIdle && !d.Busy() && d.QueueLen() == 0 {
		l.IdleStarted(d, eng.Now())
	}
}

// New constructs a policy of the configured kind bound to the engine.
func New(eng *sim.Engine, cfg Config) (Policy, error) {
	cfg = cfg.withDefaults()
	switch cfg.Kind {
	case KindDefault:
		return &defaultPolicy{}, nil
	case KindSimple:
		return &simplePolicy{eng: eng, cfg: cfg}, nil
	case KindPredictive:
		return &predictivePolicy{eng: eng, cfg: cfg, ewma: NewEWMA(cfg.Alpha)}, nil
	case KindHistory:
		return &historyPolicy{eng: eng, cfg: cfg, ewma: NewEWMA(cfg.Alpha)}, nil
	case KindStaggered:
		return &staggeredPolicy{eng: eng, cfg: cfg}, nil
	default:
		return nil, fmt.Errorf("power: invalid policy kind %d", cfg.Kind)
	}
}

// MustNew is New, panicking on error (tests, examples).
func MustNew(eng *sim.Engine, cfg Config) Policy {
	p, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// BreakEvenIdle returns the idle duration at which spinning down exactly
// pays for itself energetically: spin-down + standby + spin-up consume the
// same energy as staying idle at full speed.
func BreakEvenIdle(p disk.Params) sim.Duration {
	transJ := p.SpinDownPowerW*p.SpinDownTime.Seconds() + p.SpinUpPowerW*p.SpinUpTime.Seconds()
	standbyDuringTrans := p.StandbyPowerW * (p.SpinDownTime + p.SpinUpTime).Seconds()
	num := transJ - standbyDuringTrans
	den := p.IdlePowerW - p.StandbyPowerW
	if den <= 0 {
		return 1 << 62 // never worth it
	}
	return sim.Duration(num / den * float64(sim.Second))
}

// ---------------------------------------------------------------------------
// Default: no power management.

type defaultPolicy struct{}

func (*defaultPolicy) Kind() Kind                          { return KindDefault }
func (*defaultPolicy) Attach(d *disk.Disk)                 { d.SetListener(nil) }
func (*defaultPolicy) RequestArrived(*disk.Disk, sim.Time) {}
func (*defaultPolicy) IdleStarted(*disk.Disk, sim.Time)    {}

// ---------------------------------------------------------------------------
// Simple: spin down after a fixed timeout (Fig. 2).

type simplePolicy struct {
	eng           *sim.Engine
	cfg           Config
	timer         *sim.Event
	timeoutFn     sim.Handler // bound once at Attach
	cooldownUntil sim.Time
	stats         Stats
}

func (p *simplePolicy) Kind() Kind { return KindSimple }

func (p *simplePolicy) PolicyStats() Stats { return p.stats }

func (p *simplePolicy) Attach(d *disk.Disk) {
	p.timeoutFn = func(sim.Time) {
		// The disk may have become busy at exactly the firing timestamp;
		// SpinDown refuses and we simply re-arm on the next idle start.
		_ = d.SpinDown()
	}
	d.SetListener(p)
	engageIfIdle(p, d, p.eng)
}

//sddsvet:hotpath
func (p *simplePolicy) IdleStarted(d *disk.Disk, now sim.Time) {
	if now < p.cooldownUntil {
		return
	}
	p.cancelTimer()
	p.timer = p.eng.Schedule(p.cfg.Timeout, "power.simple.timeout", p.timeoutFn)
}

func (p *simplePolicy) RequestArrived(d *disk.Disk, now sim.Time) {
	p.cancelTimer()
	// A request that lands mid-transition means the spin-down was a
	// mistake; back off before trying again.
	if s := d.State(); s == disk.StateSpinningDown || s == disk.StateSpinningUp {
		p.cooldownUntil = now + p.cfg.Cooldown
		p.stats.WrongPredictions++
		p.eng.Probe().Emit(probe.KindWrongPredict, int32(d.ID), int64(now), 0)
	}
}

func (p *simplePolicy) cancelTimer() {
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
}

// ---------------------------------------------------------------------------
// Prediction-Based: predict idle length; spin down immediately when the
// prediction exceeds the (scaled) break-even; spin up ahead of time so the
// disk is ready when the next request is expected.

type predictivePolicy struct {
	eng  *sim.Engine
	cfg  Config
	ewma *EWMA

	idleStart     sim.Time
	idling        bool
	wakeTimer     *sim.Event
	wakeFn        sim.Handler // bound once at Attach
	lastGap       sim.Duration
	cooldownUntil sim.Time
	stats         Stats
}

func (p *predictivePolicy) Kind() Kind { return KindPredictive }

func (p *predictivePolicy) PolicyStats() Stats { return p.stats }

func (p *predictivePolicy) Attach(d *disk.Disk) {
	p.wakeFn = func(now sim.Time) {
		// SpinUp errors when a request already woke the disk; only the
		// successful ahead-of-time wake counts as a pre-activation.
		if d.SpinUp() == nil {
			p.stats.PreActivations++
			p.eng.Probe().Emit(probe.KindPreActivation, int32(d.ID), int64(now), 0)
		}
	}
	d.SetListener(p)
	engageIfIdle(p, d, p.eng)
}

//sddsvet:hotpath
func (p *predictivePolicy) IdleStarted(d *disk.Disk, now sim.Time) {
	p.idleStart = now
	p.idling = true
	if now < p.cooldownUntil {
		return
	}
	pred, ok := p.ewma.Predict()
	if !ok {
		return
	}
	threshold := float64(BreakEvenIdle(d.Params())) * p.cfg.BreakEvenScale
	if pred < threshold {
		return
	}
	if err := d.SpinDown(); err != nil {
		return
	}
	// Wake ahead of time: the spin-up should complete right when the next
	// request is predicted, hiding its latency. The EWMA damps long phases,
	// so the wake time also considers the most recent gap — waking at the
	// damped average would surface the disk long before a repeated long
	// idle period ends, wasting most of the standby window. Never wake
	// before the spin-down itself completes.
	horizon := sim.Duration(pred)
	if p.lastGap > horizon {
		horizon = p.lastGap
	}
	wake := horizon - d.Params().SpinUpTime
	// Never wake before the energy break-even point: surfacing earlier
	// guarantees the spin-down loses energy, and the whole point of acting
	// on the prediction was the saving. If the request beats the wake
	// timer, the latency cost is the same one the Simple policy pays.
	if floor := BreakEvenIdle(d.Params()); wake < floor {
		wake = floor
	}
	if wake < d.Params().SpinDownTime {
		wake = d.Params().SpinDownTime
	}
	p.cancelWake()
	p.wakeTimer = p.eng.Schedule(wake, "power.predictive.wake", p.wakeFn)
}

func (p *predictivePolicy) RequestArrived(d *disk.Disk, now sim.Time) {
	p.cancelWake()
	if p.idling {
		p.idling = false
		gap := now - p.idleStart
		p.lastGap = gap
		p.ewma.Observe(float64(gap))
	}
	// A request landing mid-transition means the spin-down was wrong;
	// back off as the Simple policy does.
	if s := d.State(); s == disk.StateSpinningDown || s == disk.StateSpinningUp {
		p.cooldownUntil = now + p.cfg.Cooldown
		p.stats.WrongPredictions++
		p.eng.Probe().Emit(probe.KindWrongPredict, int32(d.ID), int64(now), 0)
	}
}

func (p *predictivePolicy) cancelWake() {
	if p.wakeTimer != nil {
		p.wakeTimer.Cancel()
		p.wakeTimer = nil
	}
}

// ---------------------------------------------------------------------------
// History-Based multi-speed (Fig. 3(a)): predict the idle length, jump to
// the most appropriate RPM level, return to full speed ahead of time. A
// wrong prediction costs either energy (idle ended early, served slow) or
// performance, exactly as the paper notes.

type historyPolicy struct {
	eng  *sim.Engine
	cfg  Config
	ewma *EWMA

	idleStart sim.Time
	idling    bool
	rampTimer *sim.Event
	reviseFn  sim.Handler // bound once at Attach; shared by ramp and revise
	stats     Stats
}

func (p *historyPolicy) Kind() Kind { return KindHistory }

func (p *historyPolicy) PolicyStats() Stats { return p.stats }

func (p *historyPolicy) Attach(d *disk.Disk) {
	p.reviseFn = func(now sim.Time) {
		if d.Busy() || d.QueueLen() > 0 {
			return
		}
		// Still idle when the timer fires: the idle period is provably
		// longer than the working prediction, so revise upward instead of
		// surfacing to full speed for the rest of a long gap.
		p.stats.PreActivations++
		p.eng.Probe().Emit(probe.KindPreActivation, int32(d.ID), int64(now), 0)
		p.engage(d, 2*(now-p.idleStart))
	}
	d.SetListener(p)
	engageIfIdle(p, d, p.eng)
}

// chooseRPM returns the lowest speed whose round-trip transition cost,
// scaled by the safety margin, fits inside the predicted idle period: the
// speed that "saves maximum energy while keeping the performance impact
// bounded".
func (p *historyPolicy) chooseRPM(params disk.Params, predicted sim.Duration) int {
	best := params.MaxRPM
	for _, rpm := range params.Levels() {
		roundTrip := params.RPMShiftTime(params.MaxRPM, rpm) * 2
		if float64(roundTrip)*p.cfg.HistoryMargin <= float64(predicted) {
			best = rpm // levels are fastest-first; keep descending
		}
	}
	return best
}

//sddsvet:hotpath
func (p *historyPolicy) IdleStarted(d *disk.Disk, now sim.Time) {
	p.idleStart = now
	p.idling = true
	pred, ok := p.ewma.Predict()
	if !ok {
		return
	}
	p.engage(d, sim.Duration(pred))
}

// engage drops to the speed the working prediction admits and arms the
// revision timer. When the timer fires with the disk still idle, the idle
// period is provably longer than predicted: the policy doubles the working
// prediction (possibly dropping deeper) rather than ramping up — only a
// request, or a prediction that proves accurate, brings the disk back to
// full speed ahead of time.
//
//sddsvet:hotpath
func (p *historyPolicy) engage(d *disk.Disk, pred sim.Duration) {
	params := d.Params()
	target := p.chooseRPM(params, pred)
	if target < d.TargetRPM() {
		if err := d.SetTargetRPM(target, false); err != nil {
			return
		}
	} else {
		target = d.TargetRPM()
	}
	if target <= params.MinRPM {
		// Already at the floor: nothing deeper to gain, so park until the
		// next request restores full speed (ends the revision chain — the
		// event queue must drain at end of run).
		p.cancelRamp()
		return
	}
	if target >= params.MaxRPM {
		// Nothing gained at full speed. Re-check only when the prediction
		// is substantial — probing every sub-second idle start would drag
		// dense I/O phases through pointless shifts.
		if pred >= 500*sim.Millisecond {
			p.armRevision(d, pred)
		}
		return
	}
	// Plan the return to full speed just ahead of the predicted idle end.
	backShift := params.RPMShiftTime(target, params.MaxRPM)
	lead := sim.Duration(0.85*float64(pred)) - backShift
	elapsed := p.eng.Now() - p.idleStart
	down := params.RPMShiftTime(params.MaxRPM, target)
	if lead < elapsed+down {
		lead = elapsed + down
	}
	p.cancelRamp()
	p.rampTimer = p.eng.Schedule(lead-elapsed, "power.history.ramp", p.reviseFn)
}

// armRevision re-checks an unengaged idle period after the predicted
// length passes. Revisions stop once the working prediction exceeds a
// generous bound — by then the disk is as low as it will go and the chain
// must terminate so the event queue can drain.
func (p *historyPolicy) armRevision(d *disk.Disk, pred sim.Duration) {
	if pred <= 0 {
		pred = sim.MilliToTime(100)
	}
	if pred > 30*sim.Minute {
		return
	}
	p.cancelRamp()
	p.rampTimer = p.eng.Schedule(pred, "power.history.revise", p.reviseFn)
}

func (p *historyPolicy) RequestArrived(d *disk.Disk, now sim.Time) {
	p.cancelRamp()
	if p.idling {
		p.idling = false
		p.ewma.Observe(float64(now - p.idleStart))
	}
	// Wrong prediction: the request finds the disk below full speed. It is
	// served at the current speed (the performance loss the paper
	// describes); the disk returns to full speed at the next idle moment.
	if d.TargetRPM() != d.Params().MaxRPM {
		p.stats.WrongPredictions++
		p.eng.Probe().Emit(probe.KindWrongPredict, int32(d.ID), int64(now), 0)
		_ = d.SetTargetRPM(d.Params().MaxRPM, false)
	}
}

func (p *historyPolicy) cancelRamp() {
	if p.rampTimer != nil {
		p.rampTimer.Cancel()
		p.rampTimer = nil
	}
}

// ---------------------------------------------------------------------------
// Staggered multi-speed (Fig. 3(b)): on idleness, drop to the second-fastest
// speed; every further Timeout of continued idleness, drop another level;
// on the next request, ramp back to the fastest speed before serving.

type staggeredPolicy struct {
	eng    *sim.Engine
	cfg    Config
	timer  *sim.Event
	stepFn sim.Handler // bound once at Attach
	stats  Stats
}

func (p *staggeredPolicy) Kind() Kind { return KindStaggered }

func (p *staggeredPolicy) PolicyStats() Stats { return p.stats }

func (p *staggeredPolicy) Attach(d *disk.Disk) {
	p.stepFn = func(sim.Time) { p.stepDown(d) }
	d.SetListener(p)
	engageIfIdle(p, d, p.eng)
}

func (p *staggeredPolicy) IdleStarted(d *disk.Disk, _ sim.Time) {
	// The first step fires only once idleness persists for the detection
	// timeout; each further step needs another x1 of continued idleness.
	p.cancelTimer()
	p.timer = p.eng.Schedule(p.cfg.Timeout, "power.staggered.first", p.stepFn)
}

// stepDown lowers the target one level and arms the next step.
//
//sddsvet:hotpath
func (p *staggeredPolicy) stepDown(d *disk.Disk) {
	params := d.Params()
	next := d.TargetRPM() - params.RPMStep
	if next < params.MinRPM {
		return
	}
	if err := d.SetTargetRPM(next, false); err != nil {
		return
	}
	p.cancelTimer()
	p.timer = p.eng.Schedule(p.cfg.Timeout, "power.staggered.step", p.stepFn)
}

func (p *staggeredPolicy) RequestArrived(d *disk.Disk, now sim.Time) {
	p.cancelTimer()
	if d.TargetRPM() != d.Params().MaxRPM || d.RPM() != d.Params().MaxRPM {
		p.stats.WrongPredictions++
		p.eng.Probe().Emit(probe.KindWrongPredict, int32(d.ID), int64(now), 0)
		// Back to the fastest speed. Service proceeds at the current speed
		// while the (slow, UpShiftFactor×) recovery is pending — the disk
		// model forces the ramp after at most maxUpDefer of continued
		// service, which is the recovery penalty the paper attributes to
		// this scheme.
		_ = d.SetTargetRPM(d.Params().MaxRPM, false)
	}
}

func (p *staggeredPolicy) cancelTimer() {
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
}

// ---------------------------------------------------------------------------
// Oracle: a wrapper that receives the true length of each idle period from
// an external hint source (a previous run's trace). Used by the ablation
// benchmarks to bound how much better perfect prediction could do.

// HintSource supplies the true upcoming idle length at each idle start.
type HintSource interface {
	// NextIdle returns the actual duration of the idle period beginning
	// now, and false when unknown.
	NextIdle(diskID int, now sim.Time) (sim.Duration, bool)
}

// Oracle is a History-style multi-speed policy driven by perfect hints.
type Oracle struct {
	eng    *sim.Engine
	cfg    Config
	hints  HintSource
	margin float64
	rampFn sim.Handler // bound once at Attach
	stats  Stats
}

// PolicyStats reports the oracle's prediction outcomes.
func (o *Oracle) PolicyStats() Stats { return o.stats }

// NewOracle returns an oracle policy using hints for idle lengths.
func NewOracle(eng *sim.Engine, cfg Config, hints HintSource) *Oracle {
	cfg = cfg.withDefaults()
	return &Oracle{eng: eng, cfg: cfg, hints: hints, margin: 1.0}
}

// Kind reports KindHistory: the oracle is the history mechanism with a
// perfect predictor.
func (o *Oracle) Kind() Kind { return KindHistory }

// Attach installs the oracle as the disk's listener.
func (o *Oracle) Attach(d *disk.Disk) {
	o.rampFn = func(now sim.Time) {
		o.stats.PreActivations++
		o.eng.Probe().Emit(probe.KindPreActivation, int32(d.ID), int64(now), 0)
		_ = d.SetTargetRPM(d.Params().MaxRPM, false)
	}
	d.SetListener(o)
	engageIfIdle(o, d, o.eng)
}

// IdleStarted drops straight to the best speed the true idle length admits.
//
//sddsvet:hotpath
func (o *Oracle) IdleStarted(d *disk.Disk, now sim.Time) {
	gap, ok := o.hints.NextIdle(d.ID, now)
	if !ok {
		return
	}
	params := d.Params()
	best := params.MaxRPM
	for _, rpm := range params.Levels() {
		roundTrip := params.RPMShiftTime(params.MaxRPM, rpm) + params.RPMShiftTime(rpm, params.MaxRPM)
		if float64(roundTrip)*o.margin <= float64(gap) {
			best = rpm
		}
	}
	if best >= d.TargetRPM() {
		return
	}
	if err := d.SetTargetRPM(best, false); err != nil {
		return
	}
	back := params.RPMShiftTime(best, params.MaxRPM)
	lead := gap - back
	if lead < 0 {
		lead = 0
	}
	o.eng.ScheduleFunc(lead, "power.oracle.ramp", o.rampFn)
}

// RequestArrived restores full speed if a hint was wrong (should not happen
// with a faithful trace).
func (o *Oracle) RequestArrived(d *disk.Disk, now sim.Time) {
	if d.TargetRPM() != d.Params().MaxRPM {
		o.stats.WrongPredictions++
		o.eng.Probe().Emit(probe.KindWrongPredict, int32(d.ID), int64(now), 0)
		_ = d.SetTargetRPM(d.Params().MaxRPM, false)
	}
}
