// Command sddsworker executes shards of a sharded sweep coordinated by
// sddsd: it leases content-keyed shards over HTTP, simulates each
// request through the standard bounded session (compile cache and
// fault/timeout plumbing intact), journals finished requests so a crash
// loses at most the run being written, and streams the records back to
// the coordinator. Leases are renewed under a heartbeat; a worker that
// crashes, stalls, or partitions simply lets its lease expire — the
// coordinator requeues the shard, and the content-addressed store dedups
// any late double-completion.
//
//	sddsworker -coordinator http://127.0.0.1:8377 -name w1 -journal-dir /tmp/w1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sdds/internal/cliutil"
	"sdds/internal/harness"
	"sdds/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sddsworker:", err)
		os.Exit(1)
	}
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sddsworker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "sddsd base URL to lease shards from (required)")
		name        = fs.String("name", "", "worker name reported in leases and events (default: host:pid)")
		workers     = fs.Int("workers", 0, "concurrent cluster simulations (0 = GOMAXPROCS)")
		timeout     = fs.Duration("timeout", 0, "per-run wall-clock deadline (0 = none)")
		journalDir  = fs.String("journal-dir", "", "directory for per-shard crash journals; a restarted worker resumes a re-leased shard from them")
		compile     = fs.String("compile-cache", "on", "compile-artifact cache: on, off, or a persistent JSONL store path")
		idleExit    = fs.Bool("idle-exit", true, "exit when the coordinator reports the sweep done (false: keep polling for the next sweep)")
	)
	var df cliutil.DiagFlags
	df.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required (the sddsd base URL)")
	}
	if !strings.Contains(*coordinator, "://") {
		*coordinator = "http://" + *coordinator
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	log, closeLog, err := df.NewLogger()
	if err != nil {
		return err
	}
	defer closeLog()
	cache, disabled, err := cliutil.OpenCompileCache(*compile)
	if err != nil {
		return err
	}
	if cache != nil && cache.Store() != nil {
		defer cache.Close()
	}
	rec, err := df.NewRecorder(log)
	if err != nil {
		return err
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return err
		}
	}

	sess := harness.NewSession(harness.SessionOptions{
		Workers:             *workers,
		RunTimeout:          *timeout,
		CompileCache:        cache,
		DisableCompileCache: disabled,
		Diag:                rec,
		Log:                 log,
	})
	w := &shard.Worker{
		API:          &shard.Client{BaseURL: *coordinator},
		Name:         *name,
		ExitWhenDone: *idleExit,
		JournalDir:   *journalDir,
		Log:          log,
		Exec: func(ctx context.Context, req harness.Request) (harness.RunRecord, error) {
			res, _, err := sess.RunRequest(ctx, req)
			if err != nil {
				return harness.RunRecord{}, err
			}
			return harness.NewRunRecord(res), nil
		},
	}
	fmt.Fprintf(os.Stderr, "sddsworker: %s leasing from %s\n", *name, *coordinator)
	start := time.Now() //sddsvet:ignore simdet -- wall-clock worker lifetime, not simulated time
	err = w.Run(ctx)
	simulated, hits := sess.Stats()
	fmt.Fprintf(os.Stderr, "sddsworker: %s exiting after %s (%d simulated, %d cache hits)\n",
		*name, time.Since(start).Round(time.Millisecond), simulated, hits) //sddsvet:ignore simdet -- wall-clock worker lifetime
	return err
}
