package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdds/internal/diag"
	"sdds/internal/harness"
	"sdds/internal/probe"
)

// newBundle captures a representative bundle (request + trace) into a
// fresh capture dir and returns the dir and the bundle info.
func newBundle(t *testing.T) (string, *diag.BundleInfo) {
	t.Helper()
	dir := t.TempDir()
	rec, err := diag.NewRecorder(diag.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	req, err := harness.Request{App: "sar", Policy: "history", Scale: 0.05, Seed: 42}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	p := probe.NewSpanProbe()
	p.StartSpan(probe.TrackRun, "run").End()
	info, err := rec.Capture(diag.Capture{
		Trigger:    diag.TriggerManual,
		Key:        req.Key(),
		ContentKey: req.ContentKey(),
		Request:    req,
		Trace: func(w io.Writer) error {
			return probe.WriteChromeTrace(w, p, probe.ChromeOptions{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir, info
}

func TestTriageValidBundle(t *testing.T) {
	dir, info := newBundle(t)
	if err := run([]string{info.Path}); err != nil {
		t.Fatal(err)
	}
	// Resolve by ID prefix against the dir.
	if err := run([]string{"-dir", dir, info.ID[:6]}); err != nil {
		t.Fatal(err)
	}
}

func TestTriageTamperedBundle(t *testing.T) {
	_, info := newBundle(t)
	if err := os.WriteFile(filepath.Join(info.Path, "request.json"), []byte(`{"app":"hacked"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{info.Path})
	if err == nil || !strings.Contains(err.Error(), "failed validation") {
		t.Fatalf("tampered bundle passed: %v", err)
	}
}

func TestListCaptureDir(t *testing.T) {
	dir, _ := newBundle(t)
	if err := run([]string{"-dir", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownBundle(t *testing.T) {
	if err := run([]string{"/definitely/not/a/bundle"}); err == nil {
		t.Fatal("missing bundle accepted")
	}
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "beef"}); err == nil {
		t.Fatal("unknown ID accepted")
	}
}
