package service

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"sdds/internal/harness"
)

// TestServiceCompileCacheSurfaces drives a scheduled run through the
// service and asserts the compile cache shows up everywhere it should:
// status, doctor, Prometheus metrics — and that a restarted service
// restores the artifact from the persisted store instead of recompiling.
func TestServiceCompileCacheSurfaces(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "runs.jsonl")
	s, ts := newTestServer(t, storePath, 2)

	req := harness.Request{App: "sar", Scheduling: true, Scale: 0.02, Seed: 7}
	var rr RunResponse
	if code := postJSON(t, ts.URL+"/v1/runs", req, &rr); code != http.StatusOK {
		t.Fatalf("run status %d (%s)", code, rr.Error)
	}

	var st StatusResponse
	if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.CompileCache == nil {
		t.Fatal("status has no compile_cache block")
	}
	if st.CompileCache.Misses != 1 || st.CompileCache.Entries != 1 {
		t.Errorf("compile cache stats = %+v, want 1 miss / 1 entry", st.CompileCache)
	}
	if want := storePath + ".artifacts"; st.ArtifactPath != want {
		t.Errorf("artifact path = %q, want %q", st.ArtifactPath, want)
	}
	if st.SetupGroups != 1 {
		t.Errorf("setup groups = %d, want 1", st.SetupGroups)
	}

	var doc DoctorResponse
	if code := getJSON(t, ts.URL+"/v1/doctor", &doc); code != http.StatusOK {
		t.Fatalf("doctor %d: %+v", code, doc)
	}
	found := false
	for _, c := range doc.Checks {
		if c.Name == "compile-cache" {
			found = true
			if c.Status != "ok" {
				t.Errorf("compile-cache check = %+v", c)
			}
			if !strings.Contains(c.Detail, "1 entries") {
				t.Errorf("compile-cache detail = %q, want entry count", c.Detail)
			}
		}
	}
	if !found {
		t.Error("doctor has no compile-cache check")
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"compile_cache_misses 1", "compile_cache_entries 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	// Restart: the run itself is journal-preloaded, but a sibling seed
	// forces a real simulation whose compile must restore from the
	// artifact store rather than recompile.
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, storePath, 2)
	req2 := req
	req2.Seed = 8
	var rr2 RunResponse
	if code := postJSON(t, ts2.URL+"/v1/runs", req2, &rr2); code != http.StatusOK {
		t.Fatalf("restarted run status %d (%s)", code, rr2.Error)
	}
	if cs := s2.sess.CompileCacheStats(); cs.Restores != 1 || cs.Misses != 0 {
		t.Errorf("restarted compile cache stats = %+v, want 1 restore / 0 misses", cs)
	}
}

// TestServiceCompileCacheDisabled pins the "off" spelling: no cache, no
// status block, and the doctor check reports disabled.
func TestServiceCompileCacheDisabled(t *testing.T) {
	s, err := NewServer(Options{
		StorePath:    filepath.Join(t.TempDir(), "runs.jsonl"),
		Workers:      1,
		ArtifactPath: "off",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Status(); st.CompileCache != nil || st.ArtifactPath != "" {
		t.Errorf("disabled cache leaked into status: %+v", st)
	}
	doc := s.Doctor()
	for _, c := range doc.Checks {
		if c.Name == "compile-cache" && c.Detail != "disabled" {
			t.Errorf("compile-cache check = %+v, want disabled", c)
		}
	}
}
