// Package ionode models one I/O node of the storage architecture (Fig. 1):
// a set of member disks organized as RAID 5 or RAID 10 (Table II), fronted
// by a storage cache (64 MB default) with sequential prefetch, fed by
// stripe-unit requests from the parallel file system. Power management
// operates on the whole node: the paper spins down/up all disks of a node
// together, so one policy instance attaches to each member disk and all
// members see the node's request stream.
package ionode

import "fmt"

// RAIDLevel selects the intra-node redundancy layout.
type RAIDLevel int

// Supported levels (Table II lists 5 and 10; 0 is provided for ablations).
const (
	// RAID0 stripes without redundancy.
	RAID0 RAIDLevel = iota
	// RAID5 stripes with rotating parity; writes touch data + parity disk.
	RAID5
	// RAID10 mirrors pairs of striped disks; writes touch both mirrors,
	// reads alternate between them.
	RAID10
)

// String names the level.
func (l RAIDLevel) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID5:
		return "RAID5"
	case RAID10:
		return "RAID10"
	default:
		return "invalid"
	}
}

// ParseRAID parses "RAID0", "RAID5", "RAID10" (case-sensitive) or the bare
// digits.
func ParseRAID(s string) (RAIDLevel, error) {
	switch s {
	case "RAID0", "0":
		return RAID0, nil
	case "RAID5", "5":
		return RAID5, nil
	case "RAID10", "10":
		return RAID10, nil
	}
	return 0, fmt.Errorf("ionode: unknown RAID level %q", s)
}

// diskIO is one physical-disk operation derived from a logical unit access.
type diskIO struct {
	disk   int
	sector int64
	bytes  int64
	write  bool
}

// raidMap translates a logical (unit, offset, length, isWrite) access into
// member-disk operations for the given level and member count.
//
// Unit-to-disk placement:
//   - RAID0: data disk = unit mod n; row = unit div n.
//   - RAID5: per row of n units, one disk holds parity (rotating,
//     parity disk = row mod n); the n−1 data units of the row fill the
//     remaining disks in order. Writes add a parity update on the row's
//     parity disk (read-modify-write collapsed into one operation, which
//     preserves the power/occupancy behaviour the evaluation needs).
//   - RAID10: mirror pairs; pair = unit mod (n/2), row = unit div (n/2).
//     Reads go to one mirror (alternating by row), writes to both.
func raidMap(level RAIDLevel, members int, unit, offset, length int64, write bool, sectorSize, unitBytes int64) ([]diskIO, error) {
	if members <= 0 {
		return nil, fmt.Errorf("ionode: %d members", members)
	}
	if level == RAID5 && members < 3 {
		return nil, fmt.Errorf("ionode: RAID5 needs ≥3 members, got %d", members)
	}
	if level == RAID10 && (members < 2 || members%2 != 0) {
		return nil, fmt.Errorf("ionode: RAID10 needs an even member count ≥2, got %d", members)
	}
	sectorsPerUnit := unitBytes / sectorSize
	if sectorsPerUnit <= 0 {
		sectorsPerUnit = 1
	}
	switch level {
	case RAID0:
		row := unit / int64(members)
		d := int(unit % int64(members))
		return []diskIO{{disk: d, sector: row*sectorsPerUnit + offset/sectorSize, bytes: length, write: write}}, nil

	case RAID5:
		dataPerRow := int64(members - 1)
		row := unit / dataPerRow
		parityDisk := int(row % int64(members))
		k := int(unit % dataPerRow) // k-th data unit within the row
		d := k
		if d >= parityDisk {
			d++
		}
		sector := row*sectorsPerUnit + offset/sectorSize
		ios := []diskIO{{disk: d, sector: sector, bytes: length, write: write}}
		if write {
			ios = append(ios, diskIO{disk: parityDisk, sector: sector, bytes: length, write: true})
		}
		return ios, nil

	case RAID10:
		pairs := int64(members / 2)
		pair := unit % pairs
		row := unit / pairs
		a := int(pair * 2)
		b := a + 1
		sector := row*sectorsPerUnit + offset/sectorSize
		if write {
			return []diskIO{
				{disk: a, sector: sector, bytes: length, write: true},
				{disk: b, sector: sector, bytes: length, write: true},
			}, nil
		}
		// Alternate mirrors by row to balance read load.
		d := a
		if row%2 == 1 {
			d = b
		}
		return []diskIO{{disk: d, sector: sector, bytes: length, write: false}}, nil

	default:
		return nil, fmt.Errorf("ionode: invalid RAID level %d", level)
	}
}
