// Package compiler is the "optimizing compiler" of Fig. 4: it chains access
// slack determination (polyhedral analysis for affine programs, the
// profiling tool otherwise) with data access scheduling (internal/core) and
// emits the per-process scheduling tables the runtime data access scheduler
// loads. It corresponds to the disk-power-optimization passes the paper
// implemented in the Phoenix infrastructure.
package compiler

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sdds/internal/core"
	"sdds/internal/loop"
	"sdds/internal/polyhedral"
	"sdds/internal/stripe"
	"sdds/internal/trace"
)

// Options configures a compilation.
type Options struct {
	// Procs is the number of application processes (client nodes).
	Procs int
	// Layout is the file striping over I/O nodes (signatures derive from
	// it).
	Layout stripe.Layout
	// Delta is the vertical reuse range δ (Table II default 20).
	Delta int
	// Theta is the per-node concurrency cap θ (Table II default 4; 0
	// disables).
	Theta int
	// SlotBytes estimates how many I/O bytes fit in one scheduling slot;
	// accesses larger than it get proportionally larger lengths (the
	// extended algorithm, §IV-B2). Zero gives every access length 1.
	SlotBytes int64
	// MaxAdvance caps how many slots before its original point an access
	// may be scheduled (slack Begin is clamped to Orig − MaxAdvance). It
	// bounds the residency of prefetched data in the client buffer — the
	// paper's runtime "only performs data accesses scheduled at much
	// earlier iterations" against a bounded collective cache. Zero leaves
	// slacks unclamped.
	MaxAdvance int
	// CoalesceD groups d > 1 consecutive iterations into one scheduling
	// unit before running the scheduler (§IV-A: "if a loop is very large
	// ... we consider d iterations as one unit to measure slacks"),
	// shrinking the slot space and the scheduling tables by d×. Scheduled
	// points are mapped back to full-resolution slots on output. 0 and 1
	// mean no coalescing.
	CoalesceD int
	// ForceProfile uses the profiling tool even for affine programs.
	ForceProfile bool
	// Order / NoWeights / RandomTies pass through to the scheduler (for
	// ablations).
	Order      core.OrderKind
	NoWeights  bool
	RandomTies func(n int) int
}

// DefaultOptions returns Table II algorithm parameters over the default
// layout for the given process count.
func DefaultOptions(procs int) Options {
	return Options{
		Procs:      procs,
		Layout:     stripe.DefaultLayout(),
		Delta:      20,
		Theta:      4,
		SlotBytes:  256 << 10,
		MaxAdvance: 40, // 2δ
	}
}

// Validate reports the first option problem, or nil.
func (o Options) Validate() error {
	if o.Procs <= 0 {
		return fmt.Errorf("compiler: procs %d must be positive", o.Procs)
	}
	if o.SlotBytes < 0 {
		return fmt.Errorf("compiler: SlotBytes %d must be ≥ 0", o.SlotBytes)
	}
	if o.MaxAdvance < 0 {
		return fmt.Errorf("compiler: MaxAdvance %d must be ≥ 0", o.MaxAdvance)
	}
	if o.CoalesceD < 0 {
		return fmt.Errorf("compiler: CoalesceD %d must be ≥ 0", o.CoalesceD)
	}
	return o.Layout.Validate()
}

// instKey identifies one dynamic I/O instance.
type instKey struct {
	proc, slot, nest, stmt int
}

// Result is a finished compilation.
type Result struct {
	// Program is the compiled program.
	Program *loop.Program
	// Slacks holds the analyzed read slacks, index-aligned with Accesses.
	Slacks []loop.Slack
	// Accesses are the scheduler inputs (ID = index).
	Accesses []*core.Access
	// Schedule is the computed schedule with per-process tables.
	Schedule *core.Schedule
	// UsedProfiler reports whether the profiling path ran (non-affine
	// program or ForceProfile).
	UsedProfiler bool
	// CompileTime is the wall-clock duration of the whole pass (or of the
	// artifact restore, for results rehydrated from the compile cache).
	CompileTime time.Duration

	procs        int
	params       core.Params
	accessByInst map[instKey]int
}

// coalesceFactor normalizes CoalesceD: 0 and 1 both mean no coalescing.
func coalesceFactor(opts Options) int {
	if opts.CoalesceD < 1 {
		return 1
	}
	return opts.CoalesceD
}

// fullSlack returns an access's slack window in full-resolution slots,
// with the MaxAdvance clamp applied — the window both the initial access
// build and the Rescale re-anchoring reason in.
func fullSlack(s loop.Slack, opts Options) (begin, end int) {
	begin = s.Begin
	if opts.MaxAdvance > 0 && begin < s.End-opts.MaxAdvance {
		begin = s.End - opts.MaxAdvance
	}
	return begin, s.End
}

// buildAccesses converts analyzed slacks into scheduler inputs (ID =
// index) plus the dynamic-instance index. It is shared between the live
// compile pass and the artifact restore path so both derive identical
// accesses from identical slacks.
func buildAccesses(slacks []loop.Slack, opts Options, d int) ([]*core.Access, map[instKey]int) {
	accesses := make([]*core.Access, 0, len(slacks))
	byInst := make(map[instKey]int, len(slacks))
	for i, s := range slacks {
		length := 1
		if opts.SlotBytes > 0 && s.Inst.Length > opts.SlotBytes {
			length = int((s.Inst.Length + opts.SlotBytes - 1) / opts.SlotBytes)
		}
		if d > 1 {
			// A coalesced slot carries d iterations' worth of I/O.
			length = (length + d - 1) / d
		}
		begin, end := fullSlack(s, opts)
		a := &core.Access{
			ID:     i,
			Proc:   s.Inst.Proc,
			Begin:  begin / d,
			End:    end / d,
			Length: length,
			Sig:    opts.Layout.SignatureFor(s.Inst.Offset, s.Inst.Length),
			Orig:   end / d,
		}
		accesses = append(accesses, a)
		byInst[instKey{s.Inst.Proc, s.Inst.Slot, s.Inst.Nest, s.Inst.Stmt}] = i
	}
	return accesses, byInst
}

// schedParams derives the scheduler parameters from the options and the
// coalesced slot count — shared by compile and restore.
func schedParams(opts Options, coalesced int) core.Params {
	return core.Params{
		NumSlots:   coalesced,
		NumNodes:   opts.Layout.NumNodes,
		Delta:      opts.Delta,
		Theta:      opts.Theta,
		Order:      opts.Order,
		NoWeights:  opts.NoWeights,
		RandomTies: opts.RandomTies,
	}
}

// Compile runs the full pass.
func Compile(p *loop.Program, opts Options) (*Result, error) {
	return CompileContext(context.Background(), p, opts)
}

// CompileContext runs the full pass, honouring cancellation at the phase
// boundaries (before slack analysis and before scheduling — the two
// dominant costs of the pass).
func CompileContext(ctx context.Context, p *loop.Program, opts Options) (*Result, error) {
	start := time.Now() //sddsvet:ignore simdet -- wall-clock compile cost for CompileTime reporting, never feeds simulated results
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var (
		slacks       []loop.Slack
		usedProfiler bool
		err          error
	)
	if opts.ForceProfile || !p.IsAffine() {
		slacks, err = trace.Profile(p, opts.Procs)
		usedProfiler = true
	} else {
		slacks, err = polyhedral.Analyze(p, opts.Procs)
		var na *polyhedral.ErrNonAffine
		if errors.As(err, &na) {
			slacks, err = trace.Profile(p, opts.Procs)
			usedProfiler = true
		}
	}
	if err != nil {
		return nil, fmt.Errorf("compiler: slack analysis: %w", err)
	}

	numSlots := p.Slots(opts.Procs)
	d := coalesceFactor(opts)
	coalesced := (numSlots + d - 1) / d
	accesses, byInst := buildAccesses(slacks, opts, d)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := schedParams(opts, coalesced)
	sched, err := core.NewScheduler(params)
	if err != nil {
		return nil, err
	}
	schedule, err := sched.Schedule(accesses)
	if err != nil {
		return nil, fmt.Errorf("compiler: scheduling: %w", err)
	}
	if d > 1 {
		// Map the coalesced schedule back to full-resolution slots so the
		// runtime scheduler and the executor keep a single slot space.
		schedule = schedule.Rescale(d, numSlots, func(id int) (begin, end int) {
			return fullSlack(slacks[id], opts)
		})
	}

	return &Result{
		Program:      p,
		Slacks:       slacks,
		Accesses:     accesses,
		Schedule:     schedule,
		UsedProfiler: usedProfiler,
		CompileTime:  time.Since(start),
		procs:        opts.Procs,
		params:       params,
		accessByInst: byInst,
	}, nil
}

// AccessFor maps a dynamic read instance back to its access id.
func (r *Result) AccessFor(inst loop.IOInstance) (int, bool) {
	id, ok := r.accessByInst[instKey{inst.Proc, inst.Slot, inst.Nest, inst.Stmt}]
	return id, ok
}

// WriterSlotOf returns the producer slot of an access (-1 when the data
// pre-exists on disk).
func (r *Result) WriterSlotOf(accessID int) int {
	if accessID < 0 || accessID >= len(r.Slacks) {
		return -1
	}
	return r.Slacks[accessID].WriterSlot
}

// InstanceOf returns the dynamic instance of an access.
func (r *Result) InstanceOf(accessID int) (loop.IOInstance, bool) {
	if accessID < 0 || accessID >= len(r.Slacks) {
		return loop.IOInstance{}, false
	}
	return r.Slacks[accessID].Inst, true
}
