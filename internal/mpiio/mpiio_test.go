package mpiio

import (
	"testing"

	"sdds/internal/ionode"
	"sdds/internal/netsim"
	"sdds/internal/sim"
	"sdds/internal/stripe"
)

func testMiddleware(t *testing.T, numNodes int) (*sim.Engine, *Middleware, []*ionode.Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	layout := stripe.Layout{NumNodes: numNodes, StripeSize: 64 << 10}
	nodes := make([]*ionode.Node, numNodes)
	for i := range nodes {
		nodes[i] = ionode.MustNew(eng, i, ionode.DefaultConfig())
	}
	net := netsim.MustNew(eng, netsim.DefaultConfig(numNodes))
	m, err := New(eng, layout, nodes, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(0, "data", 1<<30); err != nil {
		t.Fatal(err)
	}
	return eng, m, nodes
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	layout := stripe.Layout{NumNodes: 2, StripeSize: 64 << 10}
	net := netsim.MustNew(eng, netsim.DefaultConfig(2))
	if _, err := New(eng, layout, nil, net); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if _, err := New(eng, stripe.Layout{}, nil, net); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestOpenValidation(t *testing.T) {
	_, m, _ := testMiddleware(t, 2)
	if _, err := m.Open(1, "bad", 0); err == nil {
		t.Fatal("zero-size file accepted")
	}
}

func TestReadFansOutAcrossNodes(t *testing.T) {
	eng, m, nodes := testMiddleware(t, 4)
	var done sim.Time
	// 256 KB spanning 4 stripe units → all 4 nodes.
	if err := m.Read(0, 0, 256<<10, func(now sim.Time, _ bool) { done = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == 0 {
		t.Fatal("read never completed")
	}
	for i, n := range nodes {
		if n.Stats().Reads != 1 {
			t.Fatalf("node %d served %d reads, want 1", i, n.Stats().Reads)
		}
	}
	reads, writes := m.Stats()
	if reads != 1 || writes != 0 {
		t.Fatalf("middleware stats: %d, %d", reads, writes)
	}
}

func TestWriteReachesNodes(t *testing.T) {
	eng, m, nodes := testMiddleware(t, 2)
	var done sim.Time
	if err := m.Write(0, 0, 128<<10, func(now sim.Time, _ bool) { done = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == 0 {
		t.Fatal("write never completed")
	}
	if nodes[0].Stats().Writes != 1 || nodes[1].Stats().Writes != 1 {
		t.Fatal("write chunks did not reach both nodes")
	}
}

func TestLengthValidation(t *testing.T) {
	_, m, _ := testMiddleware(t, 2)
	if err := m.Read(0, 0, 0, nil); err == nil {
		t.Fatal("zero-length read accepted")
	}
	if err := m.Write(0, 0, -5, nil); err == nil {
		t.Fatal("negative write accepted")
	}
}

func TestOffsetWrapsAtFileSize(t *testing.T) {
	eng, m, _ := testMiddleware(t, 2)
	if _, err := m.Open(1, "small", 128<<10); err != nil {
		t.Fatal(err)
	}
	// Offset far past EOF wraps, staying addressable.
	completed := false
	if err := m.Read(1, (1<<40)+7, 4<<10, func(sim.Time, bool) { completed = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !completed {
		t.Fatal("wrapped read did not complete")
	}
}

func TestSignatureForMatchesLayout(t *testing.T) {
	_, m, _ := testMiddleware(t, 4)
	sig := m.SignatureFor(0, 0, 256<<10)
	if sig.Count() != 4 {
		t.Fatalf("signature count = %d, want 4", sig.Count())
	}
	sig1 := m.SignatureFor(0, 0, 4<<10)
	if sig1.Count() != 1 || !sig1.Get(0) {
		t.Fatalf("small-read signature = %s", sig1.String())
	}
}

func TestConcurrentReadsComplete(t *testing.T) {
	eng, m, _ := testMiddleware(t, 4)
	done := 0
	for i := 0; i < 20; i++ {
		off := int64(i) * (64 << 10)
		if err := m.Read(0, off, 64<<10, func(sim.Time, bool) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 20 {
		t.Fatalf("%d of 20 reads completed", done)
	}
}
