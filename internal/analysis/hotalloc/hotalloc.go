// Package hotalloc implements the sddsvet analyzer guarding the
// allocation-free event hot path. PR 2 removed the per-event closure and
// boxing allocations by pre-binding handlers (sim.Handler/sim.ArgHandler
// fields initialized once at construction) and recycling events through the
// engine's free list; this analyzer keeps those call sites from regressing:
//
//   - anywhere in the module, a capturing function literal passed directly
//     to sim.Engine.ScheduleFunc or ScheduleArg is reported — each such call
//     allocates a closure per scheduled event, exactly the cost the
//     de-closuring removed. Startup-only sites may carry
//     //sddsvet:ignore hotalloc -- <reason>.
//
//   - inside functions annotated //sddsvet:hotpath, every per-call heap
//     allocation is reported: capturing closures (wherever they flow),
//     new(T), &T{...}, make, and slice/map composite literals.
//
//   - inside the same hotpath functions, any call into encoding/json is
//     reported: (de)serialization belongs to the compile-artifact restore
//     and store layers, which run once per process — a Marshal on the
//     per-event path allocates and reflects per call.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"sdds/internal/analysis"
	"sdds/internal/analysis/callsum"
)

const simPkg = "sdds/internal/sim"

// scheduleMethods are the fire-and-forget scheduling entry points whose
// events are free-listed; a closure argument defeats the point.
var scheduleMethods = map[string]bool{"ScheduleFunc": true, "ScheduleArg": true}

// Analyzer reports hot-path allocations.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags capturing closures passed to sim.Engine.ScheduleFunc/ScheduleArg, " +
		"any per-call allocation inside //sddsvet:hotpath functions, and " +
		"encoding/json (de)serialization on those hot paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && analysis.IsHotpath(fd) && fd.Body != nil {
				checkHotpathBody(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkScheduleCall(pass, call)
			return true
		})
	}
	return nil
}

// checkScheduleCall reports capturing closures handed to the engine's
// allocation-free scheduling primitives.
func checkScheduleCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !scheduleMethods[fn.Name()] || !analysis.IsMethodOn(fn, simPkg, "Engine") {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		if analysis.Captures(pass.TypesInfo, lit) {
			pass.Reportf(lit.Pos(), "capturing closure passed to Engine.%s allocates per scheduled event; pre-bind a sim.Handler/sim.ArgHandler (or //sddsvet:ignore hotalloc for startup-only sites)", fn.Name())
		}
	}
}

// checkHotpathBody reports every per-call allocation inside a
// //sddsvet:hotpath function.
func checkHotpathBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if analysis.Captures(pass.TypesInfo, n) {
				pass.Reportf(n.Pos(), "capturing closure in hotpath function %s allocates per call", name)
			}
			return true
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" {
					pass.Reportf(n.Pos(), "encoding/json.%s in hotpath function %s reflects and allocates per call; (de)serialization belongs in the restore/store layer, outside the event path", fn.Name(), name)
					return true
				}
				checkTransitiveCall(pass, fd, n, fn)
				return true
			}
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "new":
				pass.Reportf(n.Pos(), "new(...) in hotpath function %s allocates per call", name)
			case "make":
				pass.Reportf(n.Pos(), "make(...) in hotpath function %s allocates per call", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in hotpath function %s escapes and allocates per call", name)
					return false // don't double-report the literal itself
				}
			}
		case *ast.CompositeLit:
			if t, ok := pass.TypesInfo.Types[n]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "slice/map literal in hotpath function %s allocates per call", name)
				}
			}
		}
		return true
	})
}

// checkTransitiveCall reports a hotpath call whose callee — any number of
// levels down, across packages — performs a per-call allocation, carrying
// the full chain ("disk.transfer → ionode.flushBatch → fmt.Sprintf
// allocates"). Callees that are themselves //sddsvet:hotpath are skipped:
// they are held to the same standard where they are declared, so the
// violation is reported (or suppressed) exactly once, at the leaf-most
// annotated function.
func checkTransitiveCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
	if fn.Pkg() == nil || pass.Mod == nil || pass.Mod.Package(fn.Pkg().Path()) == nil {
		return
	}
	sums := callsum.Of(pass.Mod)
	sum := sums.ForFunc(fn)
	if sum == nil || sum.Hotpath || sum.Effect(callsum.Alloc) == nil {
		return
	}
	caller, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	chain := sums.CallChain(caller, call.Pos(), fn, callsum.Alloc)
	pass.ReportChain(call.Pos(), chain,
		"call allocates on the hot path: %s", callsum.Render(chain))
}
