package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdds/internal/cluster"
	"sdds/internal/fault"
	"sdds/internal/power"
)

// faultyTiny is tiny() plus a stress fault model, for the injected-sweep
// determinism and journal tests.
func faultyTiny() Config {
	c := tiny()
	fc := fault.DefaultConfig()
	fc.Rates[fault.SiteDiskRead] = 0.05
	fc.Rates[fault.SiteDiskWrite] = 0.05
	fc.Rates[fault.SiteBadSector] = 0.02
	fc.Rates[fault.SiteNetDrop] = 0.02
	fc.Rates[fault.SiteNodeStall] = 0.01
	fc.Seed = 11
	c.Faults = &fc
	return c
}

// TestWorkerPanicIsolated asserts the crash-safe pool: a spec whose config
// mutation panics fails only its own run with a stack-carrying error;
// sibling runs on the same Prime call complete normally and land in the
// cache.
func TestWorkerPanicIsolated(t *testing.T) {
	s := NewSession(SessionOptions{Workers: 4})
	c := tiny().withDefaults()

	good := defaultSpec("sar", power.KindDefault, false)
	boom := variantSpec("sar", power.KindDefault, false, "boom",
		func(*cluster.Config) { panic("injected test panic") })

	_, _, err := s.run(context.Background(), c, boom)
	if err == nil {
		t.Fatal("panicking run returned no error")
	}
	if !strings.Contains(err.Error(), "injected test panic") {
		t.Fatalf("panic error lost the payload: %v", err)
	}
	if !strings.Contains(err.Error(), "fault_session_test.go") {
		t.Fatalf("panic error carries no stack: %v", err)
	}

	// Siblings (and the session itself) survive.
	res, _, err := s.run(context.Background(), c, good)
	if err != nil || res == nil {
		t.Fatalf("sibling run after panic: %v", err)
	}
	// The panic verdict is cached like any failure: a waiter sees it
	// without re-simulating.
	_, out, err := s.run(context.Background(), c, boom)
	if err == nil || !out.hit {
		t.Fatalf("cached panic verdict: hit=%v err=%v", out.hit, err)
	}
}

// TestRunTimeoutDeadlineExceeded asserts the per-run deadline: a session
// with a vanishingly small RunTimeout fails each run with an error
// wrapping context.DeadlineExceeded, while the caller's own context stays
// intact.
func TestRunTimeoutDeadlineExceeded(t *testing.T) {
	s := NewSession(SessionOptions{Workers: 1, RunTimeout: time.Nanosecond})
	c := tiny().withDefaults()
	_, _, err := s.run(context.Background(), c, defaultSpec("sar", power.KindDefault, false))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The deadline verdict is a property of the configuration: cached.
	_, out, err2 := s.run(context.Background(), c, defaultSpec("sar", power.KindDefault, false))
	if !errors.Is(err2, context.DeadlineExceeded) || !out.hit {
		t.Fatalf("cached deadline verdict: hit=%v err=%v", out.hit, err2)
	}
	simulated, _ := s.Stats()
	if simulated != 1 {
		t.Fatalf("simulated %d times, want 1 (verdict cached)", simulated)
	}

	// A generous deadline lets the same run complete.
	ok := NewSession(SessionOptions{Workers: 1, RunTimeout: time.Minute})
	if _, _, err := ok.run(context.Background(), c, defaultSpec("sar", power.KindDefault, false)); err != nil {
		t.Fatalf("run under generous deadline: %v", err)
	}
}

// TestInjectedSweepWorkerCountInvariant asserts fixed-seed fault injection
// is deterministic across worker counts: the rendered tables of an
// injected sweep are byte-identical between a serial and a parallel
// session.
func TestInjectedSweepWorkerCountInvariant(t *testing.T) {
	exps := stressExperiments(t)
	cfg := faultyTiny()
	serial, err := NewSession(SessionOptions{Workers: 1}).RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSession(SessionOptions{Workers: 8}).RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAll(parallel), renderAll(serial); got != want {
		t.Fatalf("injected sweep diverges across worker counts:\n--- parallel ---\n%s\n--- serial ---\n%s", got, want)
	}
}

// TestFaultConfigPartOfCacheKey asserts fault-free and injected runs never
// alias in the session cache.
func TestFaultConfigPartOfCacheKey(t *testing.T) {
	s := NewSession(SessionOptions{Workers: 1})
	sp := defaultSpec("sar", power.KindDefault, false)
	plain := tiny().withDefaults()
	faulty := faultyTiny().withDefaults()
	a, _, err := s.run(context.Background(), plain, sp)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.run(context.Background(), faulty, sp)
	if err != nil {
		t.Fatal(err)
	}
	if simulated, _ := s.Stats(); simulated != 2 {
		t.Fatalf("simulated %d distinct runs, want 2", simulated)
	}
	if a.Faults != nil {
		t.Fatal("fault-free run has a FaultStats block")
	}
	if b.Faults == nil || b.Faults.Total() == 0 {
		t.Fatal("injected run has no faults")
	}
}

// TestJournalResumeCompletesOnlyMissingRuns simulates a killed sweep: a
// first session journals a subset of the plan, a resumed session runs the
// full plan, and the simulated-run counter proves only the missing
// configurations executed.
func TestJournalResumeCompletesOnlyMissingRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := faultyTiny()
	exps := stressExperiments(t)
	subset := exps[:1] // table3: the baselines, a strict subset of the plan

	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSession(SessionOptions{Workers: 2, Journal: j1})
	partial, err := s1.RunAll(context.Background(), subset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstSimulated, _ := s1.Stats()
	if firstSimulated == 0 {
		t.Fatal("first session simulated nothing")
	}
	if j1.Appends() != firstSimulated {
		t.Fatalf("journal recorded %d runs, session simulated %d", j1.Appends(), firstSimulated)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and resume: the second session must reuse every journaled
	// run and simulate only the remainder of the full plan.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != int(firstSimulated) {
		t.Fatalf("resume loaded %d entries, want %d", j2.Len(), firstSimulated)
	}
	s2 := NewSession(SessionOptions{Workers: 2, Journal: j2})
	if s2.Preloaded() != int(firstSimulated) {
		t.Fatalf("preloaded %d runs, want %d", s2.Preloaded(), firstSimulated)
	}
	full, err := s2.RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	planned := len(planFor(exps, cfg.withDefaults()))
	secondSimulated, _ := s2.Stats()
	if want := int64(planned) - firstSimulated; secondSimulated != want {
		t.Fatalf("resumed session simulated %d runs, want %d (plan %d - journaled %d)",
			secondSimulated, want, planned, firstSimulated)
	}

	// The resumed sweep's output must match a from-scratch sweep exactly —
	// journaled results are real results.
	fresh, err := NewSession(SessionOptions{Workers: 2}).RunAll(context.Background(), exps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAll(full), renderAll(fresh); got != want {
		t.Fatalf("resumed output diverges from fresh:\n--- resumed ---\n%s\n--- fresh ---\n%s", got, want)
	}
	// And the subset rendered before the crash matches its slice of the
	// fresh output.
	if got, want := renderAll(partial), renderAll(fresh[:1]); got != want {
		t.Fatalf("pre-crash output diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestJournalToleratesTornTrailingLine asserts crash tolerance: a journal
// whose final line was cut mid-write (the kill point) loses only that
// line on resume.
func TestJournalToleratesTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	cfg := tiny()
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSession(SessionOptions{Workers: 1, Journal: j1})
	if _, _, err := s1.run(context.Background(), cfg.withDefaults(), defaultSpec("sar", power.KindDefault, false)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.run(context.Background(), cfg.withDefaults(), defaultSpec("madbench2", power.KindDefault, false)); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal: chop the last 20 bytes (mid-JSON, no newline).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 {
		t.Fatalf("journal too small to tear: %d bytes", len(data))
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 {
		t.Fatalf("torn journal loaded %d entries, want 1 (intact prefix)", j2.Len())
	}
	// Appending after resume keeps the file line-aligned: the torn bytes
	// were truncated away.
	s2 := NewSession(SessionOptions{Workers: 1, Journal: j2})
	if _, _, err := s2.run(context.Background(), cfg.withDefaults(), defaultSpec("madbench2", power.KindDefault, false)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("after re-append, journal holds %d entries, want 2", j3.Len())
	}
}

// TestJournalMissingFileResumes asserts -resume against a journal that was
// never written starts cleanly from zero.
func TestJournalMissingFileResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.journal")
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Fatalf("missing journal loaded %d entries", j.Len())
	}
	s := NewSession(SessionOptions{Workers: 1, Journal: j})
	if s.Preloaded() != 0 {
		t.Fatalf("preloaded %d from a missing journal", s.Preloaded())
	}
}

// TestJournalRoundTripPreservesResult pins the entry codec: a result
// restored from its journal form carries the same measurements, idle
// histogram, metrics, and fault block.
func TestJournalRoundTripPreservesResult(t *testing.T) {
	c := faultyTiny().withDefaults()
	sp := defaultSpec("sar", power.KindDefault, true)
	s := NewSession(SessionOptions{Workers: 1})
	res, _, err := s.run(context.Background(), c, sp)
	if err != nil {
		t.Fatal(err)
	}
	key := sp.key(c)
	rec := NewRunRecord(res)
	buf, err := json.Marshal(storedRun{Request: key, Result: rec})
	if err != nil {
		t.Fatal(err)
	}
	var sr storedRun
	if err := json.Unmarshal(buf, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Request != key {
		t.Fatalf("key round-trip: %+v vs %+v", sr.Request, key)
	}
	back, err := sr.Result.Restore(sr.Request)
	if err != nil {
		t.Fatal(err)
	}
	if back.ExecTime != res.ExecTime || back.EnergyJ != res.EnergyJ ||
		back.DiskRequests != res.DiskRequests || back.SpinUps != res.SpinUps {
		t.Fatal("scalar measurements drifted through the journal")
	}
	if back.Idle.Count() != res.Idle.Count() || back.Idle.Mean() != res.Idle.Mean() || back.Idle.Max() != res.Idle.Max() {
		t.Fatal("idle histogram drifted through the journal")
	}
	if len(back.Metrics) != len(res.Metrics) {
		t.Fatalf("metrics: %d vs %d", len(back.Metrics), len(res.Metrics))
	}
	if back.Faults == nil || back.Faults.Total() != res.Faults.Total() {
		t.Fatal("fault block drifted through the journal")
	}
	// FracAtMost drives the CDF figures; spot-check one bound.
	if back.Idle.FracAtMost(500) != res.Idle.FracAtMost(500) {
		t.Fatal("idle CDF drifted through the journal")
	}
}
