package disk

import "sdds/internal/sim"

// EnergyAccount integrates power over virtual time, attributing energy and
// residence time to each disk state. The disk calls setDraw on every state
// or RPM change; the account accumulates P·Δt joules since the last change.
type EnergyAccount struct {
	last      sim.Time
	drawW     float64
	state     State
	energyJ   map[State]float64
	timeBy    map[State]sim.Duration
	totalJ    float64
	startTime sim.Time
}

// NewEnergyAccount returns an account beginning at time now in the given
// state drawing drawW watts.
func NewEnergyAccount(now sim.Time, state State, drawW float64) *EnergyAccount {
	return &EnergyAccount{
		last:      now,
		drawW:     drawW,
		state:     state,
		energyJ:   make(map[State]float64, 8),
		timeBy:    make(map[State]sim.Duration, 8),
		startTime: now,
	}
}

// accrue charges the elapsed interval at the current draw.
func (a *EnergyAccount) accrue(now sim.Time) {
	if now < a.last {
		return // defensive: never uncharge
	}
	dt := now - a.last
	j := a.drawW * dt.Seconds()
	a.energyJ[a.state] += j
	a.timeBy[a.state] += dt
	a.totalJ += j
	a.last = now
}

// SetDraw transitions the account to a new state/draw at time now, charging
// the interval since the previous change at the previous draw.
func (a *EnergyAccount) SetDraw(now sim.Time, state State, drawW float64) {
	a.accrue(now)
	a.state = state
	a.drawW = drawW
}

// TotalJoules returns cumulative energy up to time now.
func (a *EnergyAccount) TotalJoules(now sim.Time) float64 {
	a.accrue(now)
	return a.totalJ
}

// JoulesIn returns energy attributed to one state up to now.
func (a *EnergyAccount) JoulesIn(now sim.Time, s State) float64 {
	a.accrue(now)
	return a.energyJ[s]
}

// TimeIn returns residence time in one state up to now.
func (a *EnergyAccount) TimeIn(now sim.Time, s State) sim.Duration {
	a.accrue(now)
	return a.timeBy[s]
}

// Elapsed returns total accounted time up to now.
func (a *EnergyAccount) Elapsed(now sim.Time) sim.Duration {
	a.accrue(now)
	return now - a.startTime
}

// Breakdown returns a copy of the per-state energy map up to now.
func (a *EnergyAccount) Breakdown(now sim.Time) map[State]float64 {
	a.accrue(now)
	out := make(map[State]float64, len(a.energyJ))
	for k, v := range a.energyJ {
		out[k] = v
	}
	return out
}
