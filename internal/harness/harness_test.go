package harness

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests: two apps at 2% scale.
func tiny() Config {
	return Config{Scale: 0.02, Apps: []string{"sar", "madbench2"}, Seed: 1}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table2", "table3", "fig12a", "fig12b", "fig12c", "fig12d",
		"fig13a", "fig13b", "fig13c", "fig13d", "fig14a", "fig14b",
		"cachesens", "compile", "oracle", "palru", "ablations"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig12c")
	if err != nil || e.ID != "fig12c" {
		t.Fatalf("ByID = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable2StaticValues(t *testing.T) {
	res, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"32", "64KB", "12000 RPM", "17.1W", "44.8W", "16secs", "Elevator", "3600 RPM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	res, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 4 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestFig12aCDFMonotone(t *testing.T) {
	res, err := Fig12a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Each app column must be nondecreasing down the bucket rows.
	for col := 1; col < len(res.Headers); col++ {
		prev := -1.0
		for _, row := range res.Rows {
			var v float64
			if _, err := fmtSscan(row[col], &v); err != nil {
				t.Fatalf("parse %q: %v", row[col], err)
			}
			if v < prev {
				t.Fatalf("CDF column %d decreases: %v", col, row)
			}
			prev = v
		}
	}
}

func TestFig12cProducesBars(t *testing.T) {
	res, err := Fig12c(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Rows[0]) != 5 {
		t.Fatalf("unexpected shape: %v", res.Rows)
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "average savings") {
		t.Fatalf("notes = %v", res.Notes)
	}
}

func TestCompileCost(t *testing.T) {
	res, err := CompileCost(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[4] != "false" {
			t.Errorf("%s compiled via profiler; want polyhedral path", row[0])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	res, err := Ablations(Config{Scale: 0.02, Apps: []string{"sar"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("variants = %d", len(res.Rows))
	}
}

func TestRenderContainsTitleAndRule(t *testing.T) {
	res := &Result{ID: "x", Title: "T", Headers: []string{"A"}, Rows: [][]string{{"1"}}, Notes: []string{"n"}}
	out := res.Render()
	if !strings.Contains(out, "== x: T ==") || !strings.Contains(out, "n\n") {
		t.Fatalf("render = %q", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1.0 || c.Seed != 1 || len(c.Apps) != 6 {
		t.Fatalf("defaults = %+v", c)
	}
}

// fmtSscan parses a percentage like "12.3%".
func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

func TestOracleExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("three cluster passes")
	}
	res, err := Oracle(Config{Scale: 0.02, Apps: []string{"sar"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPALRUExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("two cluster passes")
	}
	res, err := PALRUCache(Config{Scale: 0.02, Apps: []string{"sar"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFig13dSweepTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ten cluster passes")
	}
	res, err := Fig13d(Config{Scale: 0.02, Apps: []string{"madbench2"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
