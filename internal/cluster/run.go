package cluster

import (
	"context"
	"fmt"

	"sdds/internal/compiler"
	"sdds/internal/disk"
	"sdds/internal/fault"
	"sdds/internal/ionode"
	"sdds/internal/loop"
	"sdds/internal/metrics"
	"sdds/internal/mpiio"
	"sdds/internal/netsim"
	"sdds/internal/power"
	"sdds/internal/probe"
	"sdds/internal/sched"
	"sdds/internal/sim"
)

// Result is the outcome of one run.
type Result struct {
	Program    string
	Policy     power.Kind
	Scheduling bool

	// ExecTime is when the last process finished.
	ExecTime sim.Duration
	// EnergyJ is total disk energy over the run (all nodes, all members).
	EnergyJ float64
	// NodeEnergyJ breaks energy down per I/O node.
	NodeEnergyJ []float64
	// Idle is the merged idle-period histogram across all disks (Fig. 12).
	Idle *metrics.IdleHistogram

	// Compile is the compiler output (nil when Scheduling is off).
	Compile *compiler.Result
	// CompileProvenance records where the compile pass came from this
	// execution (fresh compile, in-process memo, restored artifact);
	// ProvNone when Scheduling is off. It is execution provenance, not
	// simulation output — excluded from golden fingerprints and from the
	// persisted RunRecord, which must stay byte-identical regardless of
	// cache state.
	CompileProvenance compiler.Provenance

	// Buffer and cache behaviour.
	BufferHits, BufferMisses int64
	PrefetchIssued           int64 // storage-cache stride prefetches
	StorageCacheHits         int64
	StorageCacheMisses       int64

	// Runtime-scheduler agent behaviour.
	AgentMoved    int64 // table entries scheduled earlier than their orig
	AgentIssued   int64 // prefetches actually issued
	AgentBlocked  int64 // stop-fetching occurrences (buffer full)
	AgentDeferred int64 // producer local-time deferrals

	// Disk activity.
	DiskRequests int64
	SpinUps      int64
	RPMShifts    int64

	// Metrics is the run's counter/gauge registry snapshot, sorted by
	// name: disk activity, policy prediction outcomes, cache and buffer
	// ratios, per-state residency, energy, and execution time.
	Metrics []probe.Metric

	// Faults is the per-layer fault-injection and degradation block; nil
	// when the run had no injector attached (Config.Faults == nil).
	Faults *FaultStats
}

// Run executes prog on the configured cluster and returns the
// measurements.
func Run(prog *loop.Program, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prog, cfg)
}

// RunContext executes prog like Run but aborts promptly (returning ctx's
// error) when ctx is cancelled, both during the compiler pass and inside
// the discrete-event loop.
func RunContext(ctx context.Context, prog *loop.Program, cfg Config) (*Result, error) {
	setup, err := NewSetup(prog, cfg.Procs)
	if err != nil {
		return nil, err
	}
	return RunPrepared(ctx, setup, cfg)
}

// RunPrepared executes cfg against a prebuilt Setup, sharing the
// program-derived state (instance index, slot metadata) across runs that
// differ only in runtime knobs. The setup is only read, so one Setup may
// serve any number of concurrent RunPrepared calls. cfg.Procs must match
// the setup's process count.
func RunPrepared(ctx context.Context, setup *Setup, cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Procs != setup.procs {
		return nil, fmt.Errorf("cluster: config procs %d does not match setup procs %d", cfg.Procs, setup.procs)
	}
	prog := setup.prog

	eng := sim.NewEngine(cfg.Seed)
	// Attach the flight recorder before any model is constructed — models
	// cache the probe pointer at New time.
	eng.SetProbe(cfg.Probe)
	// Same for the fault injector: its per-site streams are seeded from
	// (fault seed, run seed), so equal configs reproduce the exact fault
	// pattern. A nil Faults config leaves injection off entirely.
	inj := fault.NewInjector(cfg.Faults, cfg.Seed)
	eng.SetFaults(inj)

	// Storage: I/O nodes with per-disk power policies and idle recorders.
	idle := metrics.NewIdleHistogram()
	var recorder disk.IdleRecorder = idle
	if cfg.ExtraIdleRecorder != nil {
		recorder = teeRecorder{idle, cfg.ExtraIdleRecorder}
	}
	nodes := make([]*ionode.Node, cfg.Layout.NumNodes)
	var pols []power.Policy
	for i := range nodes {
		n, err := ionode.New(eng, i, cfg.Node)
		if err != nil {
			return nil, err
		}
		for _, d := range n.Disks() {
			var pol power.Policy
			var err error
			if cfg.PolicyFactory != nil {
				pol, err = cfg.PolicyFactory(eng)
			} else {
				pol, err = power.New(eng, cfg.Policy)
			}
			if err != nil {
				return nil, err
			}
			pol.Attach(d)
			d.SetIdleRecorder(recorder)
			pols = append(pols, pol)
		}
		nodes[i] = n
	}
	net, err := netsim.New(eng, cfg.Net)
	if err != nil {
		return nil, err
	}
	mw, err := mpiio.New(eng, cfg.Layout, nodes, net)
	if err != nil {
		return nil, err
	}
	for _, f := range prog.Files {
		if _, err := mw.Open(f.ID, f.Name, f.Size); err != nil {
			return nil, err
		}
	}

	ex := &executor{
		eng:    eng,
		cfg:    cfg,
		prog:   prog,
		mw:     mw,
		nodes:  nodes,
		flt:    inj,
		slots:  setup.slots,
		procAt: make([]int, cfg.Procs),
		finish: make([]sim.Time, cfg.Procs),
		// Shared read-only program-derived state; slice headers only.
		ioFlat:       setup.ioFlat,
		ioOff:        setup.ioOff,
		slotNest:     setup.slotNest,
		slotLoc:      setup.slotLoc,
		nestBodyCost: setup.nestBodyCost,
	}
	ex.prepareProcState()

	// The framework: compile and stand up the runtime scheduler.
	var compileProv compiler.Provenance
	if cfg.Scheduling {
		compileSpan := cfg.Probe.StartSpan(probe.TrackRun, "compile "+prog.Name)
		var comp *compiler.Result
		var err error
		if cfg.CompileCache != nil {
			comp, compileProv, err = cfg.CompileCache.CompileContext(ctx, prog, cfg.Compiler)
		} else {
			comp, err = compiler.CompileContext(ctx, prog, cfg.Compiler)
			compileProv = compiler.ProvCompiled
		}
		compileSpan.End()
		if err != nil {
			return nil, err
		}
		ex.comp = comp
		ex.buf = sched.MustNewGlobalBuffer(cfg.BufferBytes)
		ex.buf.SetProbe(cfg.Probe, func() int64 { return int64(eng.Now()) })
		resolve := func(id int) (sched.AccessInfo, bool) {
			inst, ok := comp.InstanceOf(id)
			if !ok {
				return sched.AccessInfo{}, false
			}
			return sched.AccessInfo{
				File:       inst.File,
				Offset:     inst.Offset,
				Length:     inst.Length,
				WriterSlot: comp.WriterSlotOf(id),
			}, true
		}
		for p := 0; p < cfg.Procs; p++ {
			agent, err := sched.NewAgent(p, comp.Schedule.Table(p), resolve, ex, ex.buf, ex)
			if err != nil {
				return nil, err
			}
			ex.agents = append(ex.agents, agent)
		}
	}

	// Launch all processes at t=0 and run to completion.
	for p := 0; p < cfg.Procs; p++ {
		p := p
		//sddsvet:ignore hotalloc -- startup only: one closure per process, before the event loop runs
		eng.ScheduleFunc(0, "cluster.start", func(now sim.Time) { ex.beginSlot(p, 0, now) })
	}
	simSpan := cfg.Probe.StartSpan(probe.TrackRun, "simulate "+prog.Name)
	end, err := eng.RunContext(ctx)
	simSpan.End()
	if err != nil {
		return nil, fmt.Errorf("cluster: run aborted at %v: %w", end, err)
	}
	if !ex.allDone() {
		return nil, fmt.Errorf("cluster: run stalled at %v with processes unfinished", end)
	}

	// Close trailing idle gaps and collect results.
	execEnd := ex.maxFinish()
	res := &Result{
		Program:           prog.Name,
		Policy:            cfg.Policy.Kind,
		Scheduling:        cfg.Scheduling,
		ExecTime:          execEnd,
		Idle:              idle,
		Compile:           ex.comp,
		CompileProvenance: compileProv,
		NodeEnergyJ:       make([]float64, len(nodes)),
	}
	for i, n := range nodes {
		n.FlushIdleGaps(execEnd)
		j := n.EnergyJoules(execEnd)
		res.NodeEnergyJ[i] = j
		res.EnergyJ += j
		st := n.Stats()
		res.StorageCacheHits += st.CacheHits
		res.StorageCacheMisses += st.CacheMisses
		res.PrefetchIssued += st.PrefetchIssued
		for _, d := range n.Disks() {
			ds := d.Stats()
			res.DiskRequests += ds.Completed
			res.SpinUps += ds.SpinUps
			res.RPMShifts += ds.RPMShifts
		}
	}
	if ex.buf != nil {
		hits, misses, _, _ := ex.buf.Stats()
		res.BufferHits, res.BufferMisses = hits, misses
	}
	for p, a := range ex.agents {
		issued, blocked, deferred := a.Stats()
		res.AgentIssued += issued
		res.AgentBlocked += blocked
		res.AgentDeferred += deferred
		res.AgentMoved += int64(len(ex.comp.Schedule.MovedEarlier(p)))
	}
	if inj != nil {
		res.Faults = collectFaultStats(inj, nodes, net, ex)
	}
	res.Metrics = collectMetrics(res, nodes, pols, ex, execEnd)
	return res, nil
}

// collectMetrics snapshots the run's counters and gauges into a sorted,
// name-keyed metric list. All values come from model stats already
// maintained on the hot path — building the registry is a cold end-of-run
// pass, so tracing off or on changes nothing here.
func collectMetrics(res *Result, nodes []*ionode.Node, pols []power.Policy, ex *executor, end sim.Time) []probe.Metric {
	reg := probe.NewRegistry()

	requests := reg.Counter("disk.requests")
	spinUps := reg.Counter("disk.spin_ups")
	spinDowns := reg.Counter("disk.spin_downs")
	rpmShifts := reg.Counter("disk.rpm_shifts")
	idleGaps := reg.Counter("disk.idle_gaps")
	queueHW := reg.Gauge("disk.queue_high_water")
	residency := make(map[disk.State]probe.Counter)
	for _, s := range disk.AllStates() {
		residency[s] = reg.Counter("residency." + s.String() + "_s")
	}
	for _, n := range nodes {
		for _, d := range n.Disks() {
			ds := d.Stats()
			requests.Add(float64(ds.Completed))
			spinUps.Add(float64(ds.SpinUps))
			spinDowns.Add(float64(ds.SpinDowns))
			rpmShifts.Add(float64(ds.RPMShifts))
			idleGaps.Add(float64(ds.IdleGaps))
			queueHW.Observe(float64(ds.QueueHighWater))
			for _, s := range disk.AllStates() {
				residency[s].Add(d.Energy().TimeIn(end, s).Seconds())
			}
		}
	}

	wrong := reg.Counter("power.wrong_predictions")
	preAct := reg.Counter("power.pre_activations")
	for _, pol := range pols {
		if sr, ok := pol.(power.StatsReporter); ok {
			ps := sr.PolicyStats()
			wrong.Add(float64(ps.WrongPredictions))
			preAct.Add(float64(ps.PreActivations))
		}
	}

	reg.Counter("storage_cache.hits").Add(float64(res.StorageCacheHits))
	reg.Counter("storage_cache.misses").Add(float64(res.StorageCacheMisses))
	reg.Counter("storage_cache.prefetches").Add(float64(res.PrefetchIssued))
	if total := res.StorageCacheHits + res.StorageCacheMisses; total > 0 {
		reg.Gauge("storage_cache.hit_ratio").Set(float64(res.StorageCacheHits) / float64(total))
	}
	if ex.buf != nil {
		reg.Counter("buffer.hits").Add(float64(res.BufferHits))
		reg.Counter("buffer.misses").Add(float64(res.BufferMisses))
		if total := res.BufferHits + res.BufferMisses; total > 0 {
			reg.Gauge("buffer.hit_ratio").Set(float64(res.BufferHits) / float64(total))
		}
	}

	reg.Gauge("energy.total_j").Set(res.EnergyJ)
	reg.Gauge("exec.time_s").Set(res.ExecTime.Seconds())
	if res.Faults != nil {
		addFaultMetrics(reg, res.Faults)
	}
	// Flight-recorder health, when a ring-bearing probe was attached: how
	// much history the ring retained vs overwrote. Observability-only
	// entries — the golden Fingerprint deliberately excludes Metrics, so a
	// traced run still fingerprints identically to an untraced one.
	if p := ex.cfg.Probe; p.Capacity() > 0 {
		reg.Gauge("probe.ring_capacity").Set(float64(p.Capacity()))
		reg.Gauge("probe.ring_emitted").Set(float64(p.Emitted()))
		reg.Gauge("probe.ring_dropped").Set(float64(p.Dropped()))
	}
	return reg.Snapshot()
}

// executor drives the processes through their slots.
type executor struct {
	eng   *sim.Engine
	cfg   Config
	prog  *loop.Program
	mw    *mpiio.Middleware
	nodes []*ionode.Node
	// flt is the run's fault injector (nil when injection is off); the
	// executor consults it only for its retry bound — it never draws.
	flt *fault.Injector

	slots  int
	procAt []int // current slot per process
	finish []sim.Time
	done   int

	// Flat I/O-instance index shared from the run's Setup: the instances
	// of (proc p, slot s) are ioFlat[ioOff[p*slots+s]:ioOff[p*slots+s+1]],
	// in statement order — one slice header away instead of a map lookup
	// per slot. Read-only: the Setup may be serving concurrent runs.
	ioFlat []loop.IOInstance
	ioOff  []int32

	// Incremental MinSlot: slotCount[s] processes currently sit at slot s
	// (slot == slots means finished); minSlot is the lowest occupied rung.
	// Processes only move forward, so minSlot advances O(slots) total per
	// run instead of an O(Procs) scan per query.
	slotCount []int32
	minSlot   int

	// Per-process continuation state: the slot chain (compute → I/O →
	// I/O → next slot) runs through handlers bound once at startup, with
	// ioIdx[p] the next instance index within the current slot.
	ioIdx     []int32
	computeFn []sim.Handler
	nextFn    []sim.Handler
	stepFn    []sim.Handler
	bufHitFn  []sim.Handler
	releaseFn []sim.Handler
	waitFn    []func(ok bool)
	ioDoneFn  []func(now sim.Time, ok bool)
	// ioRetry counts re-issues of the current instance (reset on advance);
	// the degradation counters below feed Result.Faults.
	ioRetry        []int32
	ioRetries      int64
	ioAbandoned    int64
	fetchFallbacks int64

	// Slot metadata shared from the run's Setup (read-only): nest index,
	// slot-within-nest, per-nest body cost.
	slotNest     []int
	slotLoc      []int
	nestBodyCost []sim.Duration

	// Barrier between nests: arrival-ordered waiting processes and the
	// slot each resumes at.
	barrierNest  int
	barrierCount int
	barrierWait  []int
	pendSlot     []int

	// Framework state.
	comp   *compiler.Result
	buf    *sched.GlobalBuffer
	agents []*sched.Agent
}

// prepareProcState binds the per-process continuation handlers and seeds
// the MinSlot ladder (all processes start at slot 0).
func (ex *executor) prepareProcState() {
	procs := ex.cfg.Procs
	ex.slotCount = make([]int32, ex.slots+1)
	ex.slotCount[0] = int32(procs)
	ex.minSlot = 0
	ex.ioIdx = make([]int32, procs)
	ex.computeFn = make([]sim.Handler, procs)
	ex.nextFn = make([]sim.Handler, procs)
	ex.stepFn = make([]sim.Handler, procs)
	ex.bufHitFn = make([]sim.Handler, procs)
	ex.releaseFn = make([]sim.Handler, procs)
	ex.waitFn = make([]func(bool), procs)
	ex.ioDoneFn = make([]func(sim.Time, bool), procs)
	ex.ioRetry = make([]int32, procs)
	ex.pendSlot = make([]int, procs)
	for p := 0; p < procs; p++ {
		p := p
		ex.computeFn[p] = func(t sim.Time) {
			ex.ioIdx[p] = 0
			ex.stepIO(p, t)
		}
		ex.nextFn[p] = func(t sim.Time) {
			ex.ioIdx[p]++
			ex.stepIO(p, t)
		}
		ex.stepFn[p] = func(t sim.Time) {
			ex.stepIO(p, t)
		}
		ex.bufHitFn[p] = func(t sim.Time) {
			ex.pumpAgents(t)
			ex.ioIdx[p]++
			ex.stepIO(p, t)
		}
		ex.releaseFn[p] = func(t sim.Time) {
			ex.runSlot(p, ex.pendSlot[p], t)
		}
		ex.waitFn[p] = func(ok bool) {
			if ok {
				ex.eng.ScheduleFunc(ex.cfg.BufferHitTime, "cluster.buffer-hit", ex.bufHitFn[p])
				return
			}
			// The prefetch this read was waiting on aborted (injected
			// faults, retries exhausted). The buffer entry is gone, so
			// re-running the same instance degrades to an on-demand
			// middleware read — the cursor never moved, so producer
			// local-time ordering is untouched.
			ex.fetchFallbacks++
			ex.eng.ScheduleFunc(0, "cluster.fetch-abort", ex.stepFn[p])
		}
		ex.ioDoneFn[p] = func(t sim.Time, ok bool) {
			if !ok && int(ex.ioRetry[p]) < ex.flt.MaxRetries() {
				// The middleware exhausted its own retries; re-issue the
				// whole instance a bounded number of times before moving
				// on. The cursor is unchanged, so this is a pure re-read.
				ex.ioRetry[p]++
				ex.ioRetries++
				ex.stepIO(p, t)
				return
			}
			if !ok {
				ex.ioAbandoned++
			}
			ex.ioRetry[p] = 0
			ex.ioIdx[p]++
			ex.stepIO(p, t)
		}
	}
}

// setProcAt moves process p to slot s and maintains the MinSlot ladder.
func (ex *executor) setProcAt(p, s int) {
	old := ex.procAt[p]
	if old == s {
		return
	}
	ex.procAt[p] = s
	ex.slotCount[old]--
	ex.slotCount[s]++
	if s < ex.minSlot {
		ex.minSlot = s
		return
	}
	for ex.minSlot < ex.slots && ex.slotCount[ex.minSlot] == 0 {
		ex.minSlot++
	}
}

// Fetch implements sched.Fetcher on top of the middleware. done's ok is
// the middleware's: false only when a chunk failed after every retry.
func (ex *executor) Fetch(file int, offset, length int64, done func(now sim.Time, ok bool)) error {
	return ex.mw.Read(file, offset, length, done)
}

// MinSlot implements sched.LocalClock. The value is maintained
// incrementally by setProcAt, so the per-event queries the agents make are
// O(1) instead of an O(Procs) scan.
func (ex *executor) MinSlot() int { return ex.minSlot }

// computeCost returns the computation time of one slot for a process.
func (ex *executor) computeCost(proc, slot int) sim.Duration {
	ni := ex.slotNest[slot]
	n := ex.prog.Nests[ni]
	if _, ok := ex.prog.IterOf(ex.cfg.Procs, ni, proc, ex.slotLoc[slot]); !ok {
		return 0
	}
	cost := n.IterCost + ex.nestBodyCost[ni]
	if j := ex.cfg.ComputeJitter; j > 0 && cost > 0 {
		// Deterministic per (seed, proc, slot) multiplier in [1−j, 1+j].
		u := hash01(ex.cfg.Seed, proc, slot)
		cost = sim.Duration(float64(cost) * (1 + j*(2*u-1)))
	}
	return cost
}

// hash01 maps (seed, proc, slot) to a uniform value in [0, 1) using a
// split-mix style integer hash — stable across runs with the same seed.
func hash01(seed int64, proc, slot int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(proc)<<32 ^ uint64(slot)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// pumpAgents lets every scheduler agent retry deferred/blocked fetches.
// Agents with nothing left to issue are skipped — Pump is a pure no-op for
// them, so the skip cannot change behaviour, only save the call.
//
//sddsvet:hotpath
func (ex *executor) pumpAgents(now sim.Time) {
	for _, a := range ex.agents {
		if a.PendingEntries() == 0 {
			continue
		}
		a.Pump(now)
	}
}

// beginSlot starts process p's execution of slot s: nest barrier, agent
// notification, compute, then the slot's I/O in order.
//
//sddsvet:hotpath
func (ex *executor) beginSlot(p, s int, now sim.Time) {
	if s >= ex.slots {
		ex.finish[p] = now
		ex.done++
		ex.setProcAt(p, ex.slots)
		ex.pumpAgents(now)
		return
	}
	// Barrier: entering a new nest waits for all processes.
	ni := ex.slotNest[s]
	if ni > ex.barrierNest && ex.slotLoc[s] == 0 {
		ex.barrierCount++
		ex.pendSlot[p] = s
		ex.barrierWait = append(ex.barrierWait, p)
		if ex.barrierCount == ex.cfg.Procs {
			ex.barrierNest = ni
			ex.barrierCount = 0
			waiters := ex.barrierWait
			ex.barrierWait = nil
			for _, w := range waiters {
				ex.eng.ScheduleFunc(0, "cluster.barrier-release", ex.releaseFn[w])
			}
		}
		return
	}
	ex.runSlot(p, s, now)
}

//sddsvet:hotpath
func (ex *executor) runSlot(p, s int, now sim.Time) {
	ex.setProcAt(p, s)
	if len(ex.agents) > 0 {
		ex.agents[p].AdvanceTo(s, now)
		ex.pumpAgents(now)
	}
	cost := ex.computeCost(p, s)
	ex.eng.ScheduleFunc(cost, "cluster.compute", ex.computeFn[p])
}

// stepIO executes I/O instance ioIdx[p] of process p's current slot, then
// advances. The continuation is the pre-bound nextFn[p] — no closure per
// I/O — with the (slot, index) cursor carried in executor state: the
// process is blocked on this chain, so nothing else moves it.
//
//sddsvet:hotpath
func (ex *executor) stepIO(p int, now sim.Time) {
	s := ex.procAt[p]
	k := p*ex.slots + s
	insts := ex.ioFlat[ex.ioOff[k]:ex.ioOff[k+1]]
	i := int(ex.ioIdx[p])
	if i >= len(insts) {
		ex.beginSlot(p, s+1, now)
		return
	}
	inst := insts[i]
	switch inst.Kind {
	case loop.StmtWrite:
		if err := ex.mw.Write(inst.File, inst.Offset, inst.Length, ex.ioDoneFn[p]); err != nil {
			ex.eng.ScheduleFunc(0, "cluster.io-err", ex.nextFn[p])
		}
	case loop.StmtRead:
		if ex.comp != nil {
			if id, ok := ex.comp.AccessFor(inst); ok {
				// Resident data is a hit; an in-flight prefetch makes the
				// read wait for the delivery instead of duplicating the
				// disk access (or fall back on-demand if it aborts).
				if ex.buf.WaitConsume(id, ex.waitFn[p]) {
					return
				}
			}
		}
		if err := ex.mw.Read(inst.File, inst.Offset, inst.Length, ex.ioDoneFn[p]); err != nil {
			ex.eng.ScheduleFunc(0, "cluster.io-err", ex.nextFn[p])
		}
	default:
		ex.eng.ScheduleFunc(0, "cluster.io-skip", ex.nextFn[p])
	}
}

func (ex *executor) allDone() bool { return ex.done == ex.cfg.Procs }

func (ex *executor) maxFinish() sim.Time {
	var max sim.Time
	for _, f := range ex.finish {
		if f > max {
			max = f
		}
	}
	return max
}

// teeRecorder fans idle gaps out to two recorders.
type teeRecorder struct {
	a, b disk.IdleRecorder
}

func (t teeRecorder) RecordIdle(d *disk.Disk, gap sim.Duration) {
	t.a.RecordIdle(d, gap)
	t.b.RecordIdle(d, gap)
}
