package analysis_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdds/internal/analysis"
)

// TestBaselineRoundTrip writes findings as a baseline, loads it back, and
// applies it: matched findings are marked baselined (multiset semantics —
// two identical keys tolerate exactly two findings), unmatched findings
// stay new, and entries that matched nothing come back as stale.
func TestBaselineRoundTrip(t *testing.T) {
	recorded := []analysis.Finding{
		{File: "a.go", Line: 1, Col: 1, Analyzer: "hotalloc", Message: "m1"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "hotalloc", Message: "m1"}, // same key, second copy
		{File: "b.go", Line: 2, Col: 1, Analyzer: "simdet", Message: "m2"},
	}
	var buf bytes.Buffer
	if err := analysis.WriteBaseline(&buf, recorded); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.baseline")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Current run: one of the two m1 copies is gone, m2 still present, and
	// a brand-new finding appeared.
	current := []analysis.Finding{
		{File: "a.go", Line: 5, Col: 1, Analyzer: "hotalloc", Message: "m1"},
		{File: "b.go", Line: 2, Col: 1, Analyzer: "simdet", Message: "m2"},
		{File: "c.go", Line: 3, Col: 1, Analyzer: "detflow", Message: "m3"},
	}
	newFindings, stale := base.Apply(current)
	if len(newFindings) != 1 || newFindings[0].Analyzer != "detflow" {
		t.Errorf("Apply new = %+v, want only the detflow finding", newFindings)
	}
	if !current[0].Baselined || !current[1].Baselined {
		t.Error("matched findings not marked baselined in place")
	}
	if current[2].Baselined {
		t.Error("new finding wrongly marked baselined")
	}
	// One m1 copy went unmatched: it is stale.
	if len(stale) != 1 || !strings.Contains(stale[0], "m1") {
		t.Errorf("stale = %v, want the leftover m1 entry", stale)
	}
}

// TestLoadBaselineMissingFile pins the bootstrapping path: no baseline
// file means an empty baseline, not an error.
func TestLoadBaselineMissingFile(t *testing.T) {
	base, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	findings := []analysis.Finding{{File: "a.go", Analyzer: "simdet", Message: "m"}}
	newFindings, stale := base.Apply(findings)
	if len(newFindings) != 1 || len(stale) != 0 {
		t.Errorf("empty baseline: new=%d stale=%d, want 1/0", len(newFindings), len(stale))
	}
}
