// Package loop defines the program representation the "optimizing compiler"
// side of the framework consumes: parallel applications structured as a
// sequence of loop nests over disk-resident files (§IV-A, Fig. 5), with I/O
// statements whose byte regions are affine functions of the outer loop
// iteration and the process id. Iterations of the outer loops are the
// scheduling slots; nests execute in sequence with a barrier in between
// (the phase structure of MPI programs), and parallel nests are
// block-decomposed over processes.
package loop

import (
	"fmt"

	"sdds/internal/sim"
)

// StmtKind discriminates the statements in a nest body.
type StmtKind int

// Statement kinds.
const (
	// StmtRead is a read I/O call (MPI_File_read).
	StmtRead StmtKind = iota + 1
	// StmtWrite is a write I/O call (MPI_File_write).
	StmtWrite
	// StmtCompute is pure computation with a fixed per-iteration cost.
	StmtCompute
)

// String names the kind.
func (k StmtKind) String() string {
	switch k {
	case StmtRead:
		return "read"
	case StmtWrite:
		return "write"
	case StmtCompute:
		return "compute"
	default:
		return "invalid"
	}
}

// Affine describes a byte region as an affine function of the outer loop
// iteration i (global index within the nest) and the process id p:
//
//	offset(i, p) = Base + IterCoef·i + ProcCoef·p,  length = Len.
type Affine struct {
	Base     int64
	IterCoef int64
	ProcCoef int64
	Len      int64
}

// At evaluates the region for iteration i and process p.
func (a Affine) At(i, p int) (offset, length int64) {
	return a.Base + a.IterCoef*int64(i) + a.ProcCoef*int64(p), a.Len
}

// RegionFn computes a byte region for non-affine access patterns; programs
// using it require the profiling tool for slack analysis.
type RegionFn func(i, p int) (offset, length int64)

// Stmt is one statement of a nest body, executed once per outer iteration.
type Stmt struct {
	Kind StmtKind
	// File identifies the disk-resident file for I/O statements.
	File int
	// Region describes affine I/O statements. Ignored when Custom is set.
	Region Affine
	// Custom, when non-nil, marks the statement non-affine.
	Custom RegionFn
	// Cost is the computation time for StmtCompute.
	Cost sim.Duration
	// Every executes the statement only when i%Every == 0 (0 and 1 mean
	// every iteration) — the "read a block every k iterations" shape of
	// out-of-core codes.
	Every int
}

// Affine reports whether the statement's region is analyzable without
// profiling.
func (s Stmt) IsAffine() bool { return s.Custom == nil }

// runsAt reports whether the statement executes at outer iteration i.
func (s Stmt) runsAt(i int) bool {
	if s.Kind == StmtCompute {
		return true
	}
	if s.Every <= 1 {
		return true
	}
	return i%s.Every == 0
}

// RegionAt evaluates the statement's byte region at (i, p).
func (s Stmt) RegionAt(i, p int) (offset, length int64) {
	if s.Custom != nil {
		return s.Custom(i, p)
	}
	return s.Region.At(i, p)
}

// Nest is one loop nest: Trips outer iterations, each executing Body in
// order. Parallel nests block-decompose the Trips iterations over the
// processes; serial nests are executed redundantly by every process (the
// common "everyone reads the header" shape).
type Nest struct {
	Name     string
	Trips    int
	Parallel bool
	Body     []Stmt
	// IterCost is additional computation per outer iteration on top of any
	// StmtCompute statements.
	IterCost sim.Duration
}

// File is a disk-resident data set.
type File struct {
	ID   int
	Name string
	Size int64
}

// Program is a whole application.
type Program struct {
	Name  string
	Files []File
	Nests []Nest
}

// Validate reports the first structural problem, or nil.
func (p *Program) Validate() error {
	if len(p.Nests) == 0 {
		return fmt.Errorf("loop: program %q has no nests", p.Name)
	}
	files := make(map[int]File, len(p.Files))
	for _, f := range p.Files {
		if f.Size <= 0 {
			return fmt.Errorf("loop: file %q size %d must be positive", f.Name, f.Size)
		}
		if _, dup := files[f.ID]; dup {
			return fmt.Errorf("loop: duplicate file id %d", f.ID)
		}
		files[f.ID] = f
	}
	for ni, n := range p.Nests {
		if n.Trips <= 0 {
			return fmt.Errorf("loop: nest %d (%s) trips %d must be positive", ni, n.Name, n.Trips)
		}
		for si, s := range n.Body {
			switch s.Kind {
			case StmtRead, StmtWrite:
				if _, ok := files[s.File]; !ok {
					return fmt.Errorf("loop: nest %d stmt %d references unknown file %d", ni, si, s.File)
				}
				if s.IsAffine() && s.Region.Len <= 0 {
					return fmt.Errorf("loop: nest %d stmt %d has non-positive length", ni, si)
				}
			case StmtCompute:
				if s.Cost < 0 {
					return fmt.Errorf("loop: nest %d stmt %d negative cost", ni, si)
				}
			default:
				return fmt.Errorf("loop: nest %d stmt %d invalid kind %d", ni, si, s.Kind)
			}
		}
	}
	return nil
}

// IsAffine reports whether every I/O statement is affine (polyhedral
// analysis applies); otherwise the profiling tool must be used (§IV-A).
func (p *Program) IsAffine() bool {
	for _, n := range p.Nests {
		for _, s := range n.Body {
			if (s.Kind == StmtRead || s.Kind == StmtWrite) && !s.IsAffine() {
				return false
			}
		}
	}
	return true
}

// FileByID returns the file record.
func (p *Program) FileByID(id int) (File, bool) {
	for _, f := range p.Files {
		if f.ID == id {
			return f, true
		}
	}
	return File{}, false
}

// chunk returns the per-process iteration count of a nest.
func (n Nest) chunk(procs int) int {
	if !n.Parallel {
		return n.Trips
	}
	return (n.Trips + procs - 1) / procs
}

// Slots returns the total number of scheduling slots for the given process
// count: the sum over nests of per-process outer iterations.
func (p *Program) Slots(procs int) int {
	total := 0
	for _, n := range p.Nests {
		total += n.chunk(procs)
	}
	return total
}

// NestSlotOffset returns the slot index at which nest ni begins.
func (p *Program) NestSlotOffset(procs, ni int) int {
	off := 0
	for i := 0; i < ni && i < len(p.Nests); i++ {
		off += p.Nests[i].chunk(procs)
	}
	return off
}

// IterOf returns the global iteration a process executes at local slot k of
// nest ni, and whether the process executes it at all (block decomposition
// can leave trailing processes short).
func (p *Program) IterOf(procs, ni, proc, k int) (int, bool) {
	n := p.Nests[ni]
	if !n.Parallel {
		if k >= n.Trips {
			return 0, false
		}
		return k, true
	}
	chunk := n.chunk(procs)
	if k >= chunk {
		return 0, false
	}
	iter := proc*chunk + k
	if iter >= n.Trips {
		return 0, false
	}
	return iter, true
}

// IOInstance is one dynamic I/O call: statement si of nest ni, executed by
// proc at the given slot, touching [Offset, Offset+Length) of File.
type IOInstance struct {
	Proc   int
	Slot   int
	Nest   int
	Stmt   int
	Kind   StmtKind
	File   int
	Offset int64
	Length int64
}

// Instances enumerates every I/O instance of the program for the given
// process count, in (nest, slot, proc, stmt) order — the canonical total
// enumeration shared by the profiler and the executor.
func (p *Program) Instances(procs int) []IOInstance {
	var out []IOInstance
	for ni, n := range p.Nests {
		base := p.NestSlotOffset(procs, ni)
		chunk := n.chunk(procs)
		for k := 0; k < chunk; k++ {
			slot := base + k
			for proc := 0; proc < procs; proc++ {
				iter, ok := p.IterOf(procs, ni, proc, k)
				if !ok {
					continue
				}
				for si, s := range n.Body {
					if s.Kind == StmtCompute || !s.runsAt(iter) {
						continue
					}
					off, length := s.RegionAt(iter, proc)
					if length <= 0 {
						continue
					}
					out = append(out, IOInstance{
						Proc: proc, Slot: slot, Nest: ni, Stmt: si,
						Kind: s.Kind, File: s.File, Offset: off, Length: length,
					})
				}
			}
		}
	}
	return out
}

// Slack is a read instance together with its analyzed slack window
// [Begin, End] in slots (End is the read's own slot). WriterSlot is the
// slot of the last preceding write, or -1 when the data pre-exists on disk.
type Slack struct {
	Inst       IOInstance
	Begin, End int
	WriterSlot int
}

// Len returns the slack length in slots.
func (s Slack) Len() int { return s.End - s.Begin + 1 }
