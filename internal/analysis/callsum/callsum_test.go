package callsum_test

import (
	"testing"

	"sdds/internal/analysis"
	"sdds/internal/analysis/callsum"
)

// TestRecursionFixpoint proves the SCC pass converges on cycles and
// propagates effects through them: mutual recursion picks up the
// wall-clock effect from the recursion floor, self recursion keeps its
// allocation, and an effect-free cycle stays clean.
func TestRecursionFixpoint(t *testing.T) {
	mod, err := analysis.LoadModule("../../..", "internal/analysis/callsum/testdata/src/recursion")
	if err != nil {
		t.Fatal(err)
	}
	pkg := mod.Selected[0]
	sums := callsum.Of(mod)
	sums.ForPackage(pkg)

	sumOf := func(name string) *callsum.Summary {
		t.Helper()
		fn := sums.LookupFunc(pkg.PkgPath, "", name)
		if fn == nil {
			t.Fatalf("LookupFunc(%q) = nil", name)
		}
		sum := sums.ForFunc(fn)
		if sum == nil {
			t.Fatalf("ForFunc(%s) = nil", name)
		}
		return sum
	}

	// Every member of the pingPong/pong SCC carries the wall-clock effect
	// that enters through base.
	for _, name := range []string{"pingPong", "pong", "base"} {
		if sumOf(name).Effect(callsum.WallClock) == nil {
			t.Errorf("%s: no wall-clock effect after fixpoint", name)
		}
	}
	// Self recursion keeps its allocation.
	if sumOf("grow").Effect(callsum.Alloc) == nil {
		t.Error("grow: no alloc effect after fixpoint")
	}
	// The effect-free cycle converges clean.
	for _, name := range []string{"pure", "pureTwin"} {
		for _, k := range []callsum.EffectKind{callsum.Alloc, callsum.WallClock, callsum.GlobalRand, callsum.MapOrder, callsum.RetainEvent} {
			if c := sumOf(name).Effect(k); c != nil {
				t.Errorf("%s: unexpected %v effect: %+v", name, k, c)
			}
		}
	}

	// Chain reconstruction terminates despite the cycle and bottoms out at
	// the intrinsic leaf.
	fn := sums.LookupFunc(pkg.PkgPath, "", "pingPong")
	chain := sums.EffectChain(fn, callsum.WallClock)
	if len(chain) == 0 {
		t.Fatal("pingPong: empty wall-clock chain")
	}
	if got := chain[len(chain)-1].Note; got != "time.Now" {
		t.Errorf("chain leaf note = %q, want %q (chain: %s)", got, "time.Now", callsum.Render(chain))
	}
	if len(chain) > 32 {
		t.Errorf("chain length %d blew past the recursion cap", len(chain))
	}
}
