// Package hotallocbad is the hotalloc analyzer fixture. It imports the real
// sim engine so method resolution runs against the actual
// sdds/internal/sim.Engine type.
package hotallocbad

import "sdds/internal/sim"

type server struct {
	eng     *sim.Engine
	tickFn  sim.Handler
	pending int
}

func newServer() *server {
	s := &server{eng: sim.NewEngine(1)}
	s.tickFn = s.onTick
	return s
}

func (s *server) onTick(now sim.Time) { s.pending-- }

func capturingSchedule(s *server) {
	s.eng.ScheduleFunc(1, "bad", func(now sim.Time) { // want `capturing closure passed to Engine\.ScheduleFunc`
		s.pending++
	})
	s.eng.ScheduleArg(1, "bad", func(now sim.Time, arg any) { // want `capturing closure passed to Engine\.ScheduleArg`
		s.pending = int(now)
	}, nil)
}

func preBoundSchedule(s *server) {
	s.eng.ScheduleFunc(1, "ok", s.tickFn)              // pre-bound handler: allowed
	s.eng.ScheduleFunc(1, "ok", func(now sim.Time) {}) // non-capturing literal: no allocation
	// Handle-returning Schedule is the cancellable-timer (cold) path; its
	// closures are not the analyzer's business.
	s.eng.Schedule(1, "ok", func(now sim.Time) { s.onTick(now) })
}

func ignoredCapture(s *server) {
	//sddsvet:ignore hotalloc -- fixture: startup-only site, once per run
	s.eng.ScheduleFunc(0, "start", func(now sim.Time) { s.pending++ })
}

//sddsvet:hotpath
func (s *server) hotServe(now sim.Time) {
	fn := func(t sim.Time) { s.pending-- } // want `capturing closure in hotpath function hotServe`
	_ = fn
	p := new(server) // want `new\(\.\.\.\) in hotpath function hotServe`
	_ = p
	q := &server{eng: s.eng} // want `&composite literal in hotpath function hotServe`
	_ = q
	buf := make([]int, 4) // want `make\(\.\.\.\) in hotpath function hotServe`
	_ = buf
	fns := []sim.Handler{s.tickFn} // want `slice/map literal in hotpath function hotServe`
	_ = fns
}

//sddsvet:hotpath
func (s *server) hotClean(now sim.Time) {
	s.pending++
	s.eng.ScheduleFunc(1, "ok", s.tickFn)
	//sddsvet:ignore hotalloc -- fixture: cold error path inside a hot function
	msg := []int{1}
	_ = msg
}

func coldAllocs() *server {
	// Not annotated: construction-time allocation is fine.
	return &server{eng: sim.NewEngine(7)}
}
