package compiler

import (
	"encoding/json"
	"fmt"
	"io"
)

// The compiler phase of Fig. 4 "records this information in a table for
// each application process"; the runtime scheduler then loads those tables.
// TableFile is the serialized form of that artifact, making the two phases
// separable: compile once, ship the tables, run many times.

// TableFile is the on-disk scheduling-table bundle for one program.
type TableFile struct {
	// Program is the application name the tables were compiled for.
	Program string `json:"program"`
	// Procs is the process count the schedule assumes.
	Procs int `json:"procs"`
	// NumSlots is the scheduling-slot count.
	NumSlots int `json:"numSlots"`
	// Delta and Theta record the algorithm parameters used.
	Delta int `json:"delta"`
	Theta int `json:"theta"`
	// Entries lists every scheduled access.
	Entries []TableEntry `json:"entries"`
}

// TableEntry is one scheduled access in serialized form.
type TableEntry struct {
	AccessID int   `json:"accessId"`
	Proc     int   `json:"proc"`
	Slot     int   `json:"slot"`
	Orig     int   `json:"orig"`
	Length   int   `json:"length"`
	File     int   `json:"file"`
	Offset   int64 `json:"offset"`
	Bytes    int64 `json:"bytes"`
	// WriterSlot is the producer's slot (−1 when the data pre-exists),
	// needed by the runtime scheduler's local-time check.
	WriterSlot int `json:"writerSlot"`
}

// WriteTables serializes the compiled schedule to w.
func (r *Result) WriteTables(w io.Writer, procs int) error {
	tf := TableFile{
		Program:  r.Program.Name,
		Procs:    procs,
		NumSlots: r.Program.Slots(procs),
		Delta:    r.params.Delta,
		Theta:    r.params.Theta,
	}
	for _, proc := range r.Schedule.Procs() {
		for _, e := range r.Schedule.Table(proc) {
			inst, ok := r.InstanceOf(e.AccessID)
			if !ok {
				return fmt.Errorf("compiler: table entry %d has no instance", e.AccessID)
			}
			tf.Entries = append(tf.Entries, TableEntry{
				AccessID:   e.AccessID,
				Proc:       proc,
				Slot:       e.Slot,
				Orig:       e.Orig,
				Length:     e.Length,
				File:       inst.File,
				Offset:     inst.Offset,
				Bytes:      inst.Length,
				WriterSlot: r.WriterSlotOf(e.AccessID),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tf)
}

// ReadTables parses a scheduling-table bundle.
func ReadTables(rd io.Reader) (*TableFile, error) {
	var tf TableFile
	if err := json.NewDecoder(rd).Decode(&tf); err != nil {
		return nil, fmt.Errorf("compiler: decode tables: %w", err)
	}
	if tf.Procs <= 0 || tf.NumSlots <= 0 {
		return nil, fmt.Errorf("compiler: tables for %q have invalid dimensions %d×%d",
			tf.Program, tf.Procs, tf.NumSlots)
	}
	for i, e := range tf.Entries {
		if e.Proc < 0 || e.Proc >= tf.Procs {
			return nil, fmt.Errorf("compiler: entry %d: process %d out of range", i, e.Proc)
		}
		if e.Slot < 0 || e.Slot >= tf.NumSlots {
			return nil, fmt.Errorf("compiler: entry %d: slot %d out of range", i, e.Slot)
		}
		if e.Bytes <= 0 || e.Length < 1 {
			return nil, fmt.Errorf("compiler: entry %d: degenerate size", i)
		}
	}
	return &tf, nil
}

// PerProcess groups the entries by process, each sorted by slot (the form
// the runtime scheduler consumes).
func (tf *TableFile) PerProcess() map[int][]TableEntry {
	out := make(map[int][]TableEntry, tf.Procs)
	for _, e := range tf.Entries {
		out[e.Proc] = append(out[e.Proc], e)
	}
	return out
}
