// Policies drives a single multi-speed disk through a synthetic idle-gap
// pattern under each power-management mechanism of §II and prints the
// energy and latency outcome — the smallest way to see why the paper's
// history-based scheme wins on long, predictable idleness and why a naive
// 50 ms spin-down hurts on mid-length gaps.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"sdds/internal/disk"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/sim"
)

// pattern is a gap sequence (milliseconds between successive requests)
// mixing the three regimes of the evaluation: dense I/O (20 ms), mid-length
// idleness (800 ms), and long, repeated compute-phase gaps (90 s).
func pattern() []float64 {
	var gaps []float64
	for phase := 0; phase < 2; phase++ {
		for i := 0; i < 200; i++ {
			gaps = append(gaps, 20)
		}
		for i := 0; i < 20; i++ {
			gaps = append(gaps, 800)
		}
		for i := 0; i < 4; i++ {
			gaps = append(gaps, 90_000)
		}
	}
	return gaps
}

func main() {
	gaps := pattern()
	fmt.Printf("gap pattern: %d requests over three regimes (20 ms / 800 ms / 90 s)\n\n", len(gaps))
	fmt.Printf("%-18s %12s %10s %14s %12s\n", "policy", "energy (J)", "vs idle", "mean lat (ms)", "p-shifts/ups")

	for _, kind := range power.AllKinds() {
		eng := sim.NewEngine(1)
		d, err := disk.New(eng, 0, disk.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		pol, err := power.New(eng, power.Config{Kind: kind})
		if err != nil {
			log.Fatal(err)
		}
		pol.Attach(d)

		var totalLat sim.Duration
		var served int
		at := sim.Time(0)
		for _, g := range gaps {
			at += sim.MilliToTime(g)
			req := &disk.Request{
				Op: disk.OpRead, Sector: int64(served) * 997 % 1000, Bytes: 64 << 10,
				Done: func(_ sim.Time, r *disk.Request) {
					totalLat += r.Latency()
					served++
				},
			}
			if _, err := eng.ScheduleAt(at, "inject", func(sim.Time) { _ = d.Submit(req) }); err != nil {
				log.Fatal(err)
			}
		}
		eng.Run()
		end := eng.Now()

		energy := d.Energy().TotalJoules(end)
		idleBaseline := d.Params().IdlePowerW * end.Seconds()
		st := d.Stats()
		fmt.Printf("%-18s %12.1f %10s %14.2f %6d/%d\n",
			kind.String(), energy,
			metrics.Pct(energy/idleBaseline),
			(totalLat / sim.Duration(maxInt(served, 1))).Milliseconds(),
			st.RPMShifts, st.SpinUps)
	}
	fmt.Println("\n(vs idle = energy relative to never leaving full-speed idle;")
	fmt.Println(" the history-based scheme approaches the long-gap floor with")
	fmt.Println(" negligible latency impact, while the 50 ms spin-down pays")
	fmt.Println(" spin-up penalties on the 800 ms band.)")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
