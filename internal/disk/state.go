package disk

// State is the disk power/activity state. States beyond Standby draw
// RPM-dependent power per Eq. 1 of the paper.
type State int

// Disk states. Start at 1 so the zero value is invalid (catches
// uninitialized accounting).
const (
	// StateStandby: spindle stopped, electronics on.
	StateStandby State = iota + 1
	// StateSpinningUp: spindle accelerating from standby to full speed.
	StateSpinningUp
	// StateSpinningDown: spindle decelerating to standby.
	StateSpinningDown
	// StateIdle: rotating at the current RPM, no request in service.
	StateIdle
	// StateSeeking: head movement (plus rotational settle) for a request.
	StateSeeking
	// StateTransferring: media read/write in progress.
	StateTransferring
	// StateShiftingRPM: moving between rotational speeds (no service).
	StateShiftingRPM
)

var stateNames = map[State]string{
	StateStandby:      "standby",
	StateSpinningUp:   "spin-up",
	StateSpinningDown: "spin-down",
	StateIdle:         "idle",
	StateSeeking:      "seek",
	StateTransferring: "transfer",
	StateShiftingRPM:  "rpm-shift",
}

// String returns the lowercase state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return "invalid"
}

// Serving reports whether the state is part of request service.
func (s State) Serving() bool { return s == StateSeeking || s == StateTransferring }

// Spinning reports whether the platters are rotating at an operational
// speed (i.e. the disk could accept work without a spin-up).
func (s State) Spinning() bool {
	switch s {
	case StateIdle, StateSeeking, StateTransferring, StateShiftingRPM:
		return true
	default:
		return false
	}
}

// AllStates lists every valid state, for iteration in accounting and tests.
func AllStates() []State {
	return []State{
		StateStandby, StateSpinningUp, StateSpinningDown, StateIdle,
		StateSeeking, StateTransferring, StateShiftingRPM,
	}
}
