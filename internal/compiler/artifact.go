package compiler

import (
	"fmt"
	"time"

	"sdds/internal/core"
	"sdds/internal/loop"
)

// Provenance records where a run's compile pass came from.
type Provenance int

// Provenance values.
const (
	// ProvNone: no compile pass ran (scheduling disabled).
	ProvNone Provenance = iota
	// ProvCompiled: the pass ran fresh (cache miss or cache absent).
	ProvCompiled
	// ProvMemory: served from the in-process memo.
	ProvMemory
	// ProvStore: restored from the persistent artifact store.
	ProvStore
	// ProvUncacheable: compiled fresh because a non-serializable input
	// (custom region function, random tie breaker) defeats keying.
	ProvUncacheable
)

// String names the provenance; ProvNone is the empty string so
// scheduling-off runs render nothing.
func (p Provenance) String() string {
	switch p {
	case ProvCompiled:
		return "compiled"
	case ProvMemory:
		return "memo"
	case ProvStore:
		return "restored"
	case ProvUncacheable:
		return "uncacheable"
	default:
		return ""
	}
}

// ArtifactVersion is the serialization format version; Restore rejects
// any other value, so a format change invalidates persisted artifacts.
const ArtifactVersion = 1

// SlackRecord is the portable form of one loop.Slack.
type SlackRecord struct {
	Proc       int   `json:"proc"`
	Slot       int   `json:"slot"`
	Nest       int   `json:"nest"`
	Stmt       int   `json:"stmt"`
	Kind       int   `json:"kind"`
	File       int   `json:"file"`
	Offset     int64 `json:"offset"`
	Length     int64 `json:"length"`
	Begin      int   `json:"begin"`
	End        int   `json:"end"`
	WriterSlot int   `json:"writer_slot"`
}

// Artifact is the serializable mirror of a compile Result: the analyzed
// slacks plus the schedule's (access, point) assignments. Everything else
// in a Result — accesses, signatures, instance index, per-process tables —
// is a deterministic function of (slacks, assignments, program, options)
// and is rebuilt by Restore, which keeps the artifact small and leaves
// exactly one code path constructing scheduler inputs. Wall-clock compile
// time is deliberately excluded: artifacts are content-addressed and must
// be byte-identical across processes that compile the same key.
type Artifact struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	Procs   int    `json:"procs"`
	// UsedProfiler mirrors Result.UsedProfiler (it is an analysis outcome,
	// not derivable from the slacks alone).
	UsedProfiler bool              `json:"used_profiler"`
	Slacks       []SlackRecord     `json:"slacks"`
	Points       []core.Assignment `json:"points"`
}

// Artifact extracts the serializable mirror of the result. The schedule's
// assignments are emitted sorted by access ID, so the rendering is
// independent of map iteration order — equal compiles yield byte-equal
// artifacts.
func (r *Result) Artifact() *Artifact {
	a := &Artifact{
		Version:      ArtifactVersion,
		Program:      r.Program.Name,
		Procs:        r.procs,
		UsedProfiler: r.UsedProfiler,
		Slacks:       make([]SlackRecord, len(r.Slacks)),
		Points:       r.Schedule.Assignments(),
	}
	for i, s := range r.Slacks {
		a.Slacks[i] = SlackRecord{
			Proc:       s.Inst.Proc,
			Slot:       s.Inst.Slot,
			Nest:       s.Inst.Nest,
			Stmt:       s.Inst.Stmt,
			Kind:       int(s.Inst.Kind),
			File:       s.Inst.File,
			Offset:     s.Inst.Offset,
			Length:     s.Inst.Length,
			Begin:      s.Begin,
			End:        s.End,
			WriterSlot: s.WriterSlot,
		}
	}
	return a
}

// Restore rebuilds a full compile Result from the artifact under the same
// (program, options) that produced it. The slacks are rehydrated from the
// artifact; accesses, signatures, the instance index and the schedule are
// rebuilt through the same helpers the live compile pass uses, so a
// restored result drives a bit-identical simulation. CompileTime is the
// wall-clock cost of the restore itself.
func (a *Artifact) Restore(p *loop.Program, opts Options) (*Result, error) {
	start := time.Now() //sddsvet:ignore simdet -- wall-clock restore cost for CompileTime reporting, never feeds simulated results
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("compiler: artifact version %d, want %d", a.Version, ArtifactVersion)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.RandomTies != nil {
		return nil, fmt.Errorf("compiler: cannot restore an artifact under random tie-breaking")
	}
	if a.Program != p.Name {
		return nil, fmt.Errorf("compiler: artifact for program %q, want %q", a.Program, p.Name)
	}
	if a.Procs != opts.Procs {
		return nil, fmt.Errorf("compiler: artifact for %d procs, want %d", a.Procs, opts.Procs)
	}
	slacks := make([]loop.Slack, len(a.Slacks))
	for i, s := range a.Slacks {
		slacks[i] = loop.Slack{
			Inst: loop.IOInstance{
				Proc:   s.Proc,
				Slot:   s.Slot,
				Nest:   s.Nest,
				Stmt:   s.Stmt,
				Kind:   loop.StmtKind(s.Kind),
				File:   s.File,
				Offset: s.Offset,
				Length: s.Length,
			},
			Begin:      s.Begin,
			End:        s.End,
			WriterSlot: s.WriterSlot,
		}
	}

	numSlots := p.Slots(opts.Procs)
	d := coalesceFactor(opts)
	coalesced := (numSlots + d - 1) / d
	accesses, byInst := buildAccesses(slacks, opts, d)
	params := schedParams(opts, coalesced)

	// The schedule's points live in full-resolution slots (Rescale output
	// when d > 1). Re-anchor each scheduled access exactly as Rescale does
	// before rebuilding the tables.
	scheduleParams := params
	if d > 1 {
		scheduleParams.NumSlots = numSlots
	}
	assigns := make([]core.ScheduledAccess, len(a.Points))
	for i, pt := range a.Points {
		if pt.ID < 0 || pt.ID >= len(accesses) {
			return nil, fmt.Errorf("compiler: artifact point references access %d of %d", pt.ID, len(accesses))
		}
		acc := accesses[pt.ID]
		if d > 1 {
			begin, end := fullSlack(slacks[pt.ID], opts)
			fa := *acc
			fa.Begin = begin
			fa.End = end
			fa.Orig = end
			acc = &fa
		}
		assigns[i] = core.ScheduledAccess{Access: acc, Point: pt.Point}
	}
	schedule, err := core.NewScheduleFromAssignments(scheduleParams, assigns)
	if err != nil {
		return nil, fmt.Errorf("compiler: artifact restore: %w", err)
	}

	return &Result{
		Program:      p,
		Slacks:       slacks,
		Accesses:     accesses,
		Schedule:     schedule,
		UsedProfiler: a.UsedProfiler,
		CompileTime:  time.Since(start),
		procs:        opts.Procs,
		params:       params,
		accessByInst: byInst,
	}, nil
}

// EquivalentResults reports whether two compile results would drive
// identical simulations: same slacks, same accesses, and the same
// schedule assignments and per-process tables. It is the round-trip pin
// the artifact store applies before persisting anything — an artifact
// whose restore is not equivalent to the live compile is never written.
func EquivalentResults(a, b *Result) error {
	if len(a.Slacks) != len(b.Slacks) {
		return fmt.Errorf("compiler: slack count %d vs %d", len(a.Slacks), len(b.Slacks))
	}
	for i := range a.Slacks {
		if a.Slacks[i] != b.Slacks[i] {
			return fmt.Errorf("compiler: slack %d differs", i)
		}
	}
	if len(a.Accesses) != len(b.Accesses) {
		return fmt.Errorf("compiler: access count %d vs %d", len(a.Accesses), len(b.Accesses))
	}
	for i := range a.Accesses {
		x, y := a.Accesses[i], b.Accesses[i]
		if x.ID != y.ID || x.Proc != y.Proc || x.Begin != y.Begin || x.End != y.End ||
			x.Length != y.Length || x.Orig != y.Orig || !x.Sig.Equal(y.Sig) {
			return fmt.Errorf("compiler: access %d differs", i)
		}
	}
	ap, bp := a.Schedule.Assignments(), b.Schedule.Assignments()
	if len(ap) != len(bp) {
		return fmt.Errorf("compiler: assignment count %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return fmt.Errorf("compiler: assignment %d differs: %+v vs %+v", i, ap[i], bp[i])
		}
	}
	aProcs, bProcs := a.Schedule.Procs(), b.Schedule.Procs()
	if len(aProcs) != len(bProcs) {
		return fmt.Errorf("compiler: table proc count %d vs %d", len(aProcs), len(bProcs))
	}
	for i := range aProcs {
		if aProcs[i] != bProcs[i] {
			return fmt.Errorf("compiler: table procs differ at %d", i)
		}
		at, bt := a.Schedule.Table(aProcs[i]), b.Schedule.Table(bProcs[i])
		if len(at) != len(bt) {
			return fmt.Errorf("compiler: proc %d table length %d vs %d", aProcs[i], len(at), len(bt))
		}
		for j := range at {
			if at[j].Slot != bt[j].Slot || at[j].AccessID != bt[j].AccessID ||
				at[j].Orig != bt[j].Orig || at[j].Length != bt[j].Length ||
				!at[j].Sig.Equal(bt[j].Sig) {
				return fmt.Errorf("compiler: proc %d table entry %d differs", aProcs[i], j)
			}
		}
	}
	if a.UsedProfiler != b.UsedProfiler {
		return fmt.Errorf("compiler: UsedProfiler %t vs %t", a.UsedProfiler, b.UsedProfiler)
	}
	return nil
}
