package service

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdds/internal/diag"
	"sdds/internal/harness"
)

// newCaptureServer builds a service with diagnostics capture armed.
func newCaptureServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	if opts.StorePath == "" {
		opts.StorePath = filepath.Join(dir, "store.jsonl")
	}
	if opts.CaptureDir == "" {
		opts.CaptureDir = filepath.Join(dir, "diag")
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestBundlesDisabled: without a capture dir, the bundle endpoints answer
// 503 with a pointer at the flag, and doctor reports capture disabled.
func TestBundlesDisabled(t *testing.T) {
	_, ts := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"), 1)
	var errResp errorResponse
	if code := getJSON(t, ts.URL+"/v1/bundles", &errResp); code != http.StatusServiceUnavailable {
		t.Errorf("GET /v1/bundles = %d, want 503", code)
	}
	if !strings.Contains(errResp.Error, "capture-dir") {
		t.Errorf("error %q does not point at -capture-dir", errResp.Error)
	}
	if code := postJSON(t, ts.URL+"/v1/bundles", BundleRequest{Key: "x"}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("POST /v1/bundles = %d, want 503", code)
	}
	var doc DoctorResponse
	getJSON(t, ts.URL+"/v1/doctor", &doc)
	found := false
	for _, c := range doc.Checks {
		if c.Name == "diagnostics" {
			found = true
			if c.Status != "ok" || !strings.Contains(c.Detail, "disabled") {
				t.Errorf("diagnostics check = %+v", c)
			}
		}
	}
	if !found {
		t.Error("doctor has no diagnostics check")
	}
}

// TestManualBundleRoundTrip: capture a completed run via POST /v1/bundles
// (by request, then by key), fetch its manifest via GET, see it in the
// listing and the doctor report, and validate the bundle on disk.
func TestManualBundleRoundTrip(t *testing.T) {
	_, ts := newCaptureServer(t, Options{Workers: 1})
	req := harness.Request{App: "sar", Scale: 0.02, Seed: 7}
	var run RunResponse
	if code := postJSON(t, ts.URL+"/v1/runs", req, &run); code != http.StatusOK {
		t.Fatalf("run: status %d (%s)", code, run.Error)
	}

	var created BundleResponse
	if code := postJSON(t, ts.URL+"/v1/bundles", BundleRequest{Request: &req}, &created); code != http.StatusCreated {
		t.Fatalf("POST /v1/bundles = %d", code)
	}
	if created.Manifest.Trigger != diag.TriggerManual {
		t.Errorf("trigger = %q", created.Manifest.Trigger)
	}
	if created.Manifest.ContentKey != run.Key {
		t.Errorf("bundle content key %q, run key %q", created.Manifest.ContentKey, run.Key)
	}
	names := make(map[string]bool)
	for _, f := range created.Manifest.Files {
		names[f.Name] = true
	}
	for _, want := range []string{"request.json", "result.json", "metrics.json", "journal_tail.json", "trace.json"} {
		if !names[want] {
			t.Errorf("manual bundle missing %s (has %v)", want, created.Manifest.Files)
		}
	}
	rep, err := diag.Validate(created.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("bundle invalid: %v", rep.Problems)
	}

	// Same capture by content key dedups onto an existing-or-new bundle.
	var byKey BundleResponse
	if code := postJSON(t, ts.URL+"/v1/bundles", BundleRequest{Key: run.Key}, &byKey); code != http.StatusCreated {
		t.Fatalf("POST /v1/bundles by key = %d", code)
	}

	var got BundleResponse
	if code := getJSON(t, ts.URL+"/v1/bundles/"+created.ID, &got); code != http.StatusOK {
		t.Fatalf("GET /v1/bundles/{id} = %d", code)
	}
	if got.ID != created.ID {
		t.Errorf("got bundle %s, want %s", got.ID, created.ID)
	}
	var listing []BundleSummary
	if code := getJSON(t, ts.URL+"/v1/bundles", &listing); code != http.StatusOK || len(listing) == 0 {
		t.Fatalf("GET /v1/bundles = %d with %d entries", code, len(listing))
	}
	var doc DoctorResponse
	getJSON(t, ts.URL+"/v1/doctor", &doc)
	if len(doc.Bundles) == 0 {
		t.Error("doctor lists no bundles")
	}
	if code := getJSON(t, ts.URL+"/v1/bundles/zzzz", nil); code != http.StatusNotFound {
		t.Errorf("unknown bundle id = %d, want 404", code)
	}
	var badResp errorResponse
	if code := postJSON(t, ts.URL+"/v1/bundles", BundleRequest{Key: strings.Repeat("0", 64)}, &badResp); code != http.StatusNotFound {
		t.Errorf("unknown run key = %d, want 404", code)
	}
}

// TestTimeoutRunCapturesAutomatically: a service-side per-run deadline
// failure captures a bundle without anyone asking.
func TestTimeoutRunCapturesAutomatically(t *testing.T) {
	s, ts := newCaptureServer(t, Options{Workers: 1, RunTimeout: time.Millisecond})
	req := harness.Request{App: "sar", Policy: "history", Scheduling: true, Scale: 0.05, Seed: 42}
	var run RunResponse
	if code := postJSON(t, ts.URL+"/v1/runs", req, &run); code != http.StatusInternalServerError {
		t.Fatalf("run under 1ms deadline: status %d", code)
	}
	infos, err := s.diag.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("captured %d bundles, want 1", len(infos))
	}
	if infos[0].Manifest.Trigger != diag.TriggerTimeout {
		t.Errorf("trigger = %q, want timeout", infos[0].Manifest.Trigger)
	}
}

// TestMetricsHistogramAndDiagGauges: /v1/metrics exposes the run-latency
// histogram (with _bucket/_sum/_count series) and the diagnostics gauges.
func TestMetricsHistogramAndDiagGauges(t *testing.T) {
	_, ts := newCaptureServer(t, Options{Workers: 1})
	req := harness.Request{App: "sar", Scale: 0.02, Seed: 7}
	if code := postJSON(t, ts.URL+"/v1/runs", req, nil); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{
		"# TYPE sddsd_run_latency_seconds histogram",
		`sddsd_run_latency_seconds_bucket{le="+Inf"} 1`,
		"sddsd_run_latency_seconds_count 1",
		"diag_bundles_captured",
		"diag_capture_failures",
		"diag_watchdog_median_ms",
		"probe_spans",
		"probe_span_contention",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
