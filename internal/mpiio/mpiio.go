// Package mpiio is the I/O middleware of the simulated stack (§V-A: MPI-IO
// on top of PVFS): it exposes file-level read/write calls, fans each byte
// range out into stripe-unit chunks across the I/O nodes (Fig. 1), moves
// the bytes over the network model and completes when the last chunk lands.
// Both the application processes and the runtime data access scheduler
// issue their accesses through this layer.
package mpiio

import (
	"fmt"

	"sdds/internal/fault"
	"sdds/internal/ionode"
	"sdds/internal/netsim"
	"sdds/internal/probe"
	"sdds/internal/sim"
	"sdds/internal/stripe"
)

// FileInfo describes an open file.
type FileInfo struct {
	ID   int
	Name string
	Size int64
}

// Middleware routes file I/O to the I/O nodes.
type Middleware struct {
	eng    *sim.Engine
	layout stripe.Layout
	nodes  []*ionode.Node
	net    *netsim.Network
	files  map[int]FileInfo

	// flt/pr are the engine's fault injector and flight recorder, cached at
	// construction; both nil-safe.
	flt *fault.Injector
	pr  *probe.Probe

	reads, writes int64
	// Fault-degradation counters (all zero without an injector).
	retries      int64 // chunk re-reads/re-writes after a failed node call
	failedReads  int64 // chunks whose reads failed even after MaxRetries
	failedWrites int64 // chunks whose writes failed even after MaxRetries
}

// New wires the middleware. The node slice length must equal the layout's
// NumNodes.
func New(eng *sim.Engine, layout stripe.Layout, nodes []*ionode.Node, net *netsim.Network) (*Middleware, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != layout.NumNodes {
		return nil, fmt.Errorf("mpiio: %d nodes for a %d-node layout", len(nodes), layout.NumNodes)
	}
	return &Middleware{
		eng:    eng,
		layout: layout,
		nodes:  nodes,
		net:    net,
		files:  make(map[int]FileInfo),
		flt:    eng.Faults(),
		pr:     eng.Probe(),
	}, nil
}

// Open registers a file (MPI_File_open). Re-opening the same id is allowed
// and idempotent.
func (m *Middleware) Open(id int, name string, size int64) (FileInfo, error) {
	if size <= 0 {
		return FileInfo{}, fmt.Errorf("mpiio: file %q size %d must be positive", name, size)
	}
	fi := FileInfo{ID: id, Name: name, Size: size}
	m.files[id] = fi
	return fi, nil
}

// Layout returns the striping layout.
func (m *Middleware) Layout() stripe.Layout { return m.layout }

// Stats returns cumulative read/write call counts.
func (m *Middleware) Stats() (reads, writes int64) { return m.reads, m.writes }

// FaultStats returns the middleware's degradation counters: chunk retries
// and chunks that failed even after every retry.
func (m *Middleware) FaultStats() (retries, failedReads, failedWrites int64) {
	return m.retries, m.failedReads, m.failedWrites
}

// wrap keeps scaled-down file sizes addressable: offsets beyond the file
// wrap around, preserving the node-visit pattern of the original trace.
func (m *Middleware) wrap(file int, offset int64) int64 {
	fi, ok := m.files[file]
	if !ok || fi.Size <= 0 {
		return offset
	}
	if offset < 0 {
		offset = -offset
	}
	return offset % fi.Size
}

// Read fetches [offset, offset+length) of file, invoking done when every
// chunk has been read on its I/O node and transferred back over the
// network (MPI_File_read). ok reports whether every chunk delivered its
// data; a chunk whose node read fails (injected faults, retries exhausted)
// is re-read up to MaxRetries times with exponential backoff before the
// whole call degrades to ok=false.
func (m *Middleware) Read(file int, offset, length int64, done func(now sim.Time, ok bool)) error {
	if length <= 0 {
		return fmt.Errorf("mpiio: read length %d must be positive", length) //sddsvet:ignore hotalloc -- error path: argument validation only
	}
	m.reads++
	return m.forEachChunk(file, offset, length, func(c stripe.Chunk, chunkDone func(sim.Time, bool), chunkOK func(sim.Time)) error {
		node := m.nodes[c.Node]
		attempts := 0
		var onRead func(now sim.Time, ok bool)
		issue := func() error {
			return node.Read(file, c.Unit, c.Offset, c.Length, onRead)
		}
		onRead = func(now sim.Time, ok bool) {
			if !ok && attempts < m.flt.MaxRetries() {
				attempts++
				m.retries++
				m.pr.Emit(probe.KindRetry, int32(c.Node), int64(now), int64(attempts))
				backoff := sim.Duration(m.flt.RetryLatencyUS()) << (attempts - 1)
				//sddsvet:ignore hotalloc -- fault path: one re-read closure per failed chunk
				m.eng.ScheduleFunc(backoff, "mpiio.read-retry", func(at sim.Time) {
					if issue() != nil {
						chunkDone(at, false) // validated config: unreachable
					}
				})
				return
			}
			if !ok {
				m.failedReads++
				chunkDone(now, false)
				return
			}
			// Ship the chunk back to the client.
			if err := m.net.Transfer(c.Node, c.Length, chunkOK); err != nil {
				// Transfer setup errors are programming errors; complete
				// the chunk so callers don't hang.
				//sddsvet:ignore hotalloc -- error path: completes the chunk on a setup bug
				m.eng.ScheduleFunc(0, "mpiio.read-err", func(at sim.Time) { chunkDone(at, false) })
			}
		}
		return issue()
	}, done)
}

// Write stores [offset, offset+length) of file: data moves to each node
// over the network, then the node writes it (MPI_File_write). ok=false
// only when a chunk's write failed after every bounded retry.
func (m *Middleware) Write(file int, offset, length int64, done func(now sim.Time, ok bool)) error {
	if length <= 0 {
		return fmt.Errorf("mpiio: write length %d must be positive", length) //sddsvet:ignore hotalloc -- error path: argument validation only
	}
	m.writes++
	return m.forEachChunk(file, offset, length, func(c stripe.Chunk, chunkDone func(sim.Time, bool), chunkOK func(sim.Time)) error {
		node := m.nodes[c.Node]
		attempts := 0
		var onWrite func(now sim.Time, ok bool)
		issue := func() error {
			return node.Write(file, c.Unit, c.Offset, c.Length, onWrite)
		}
		onWrite = func(now sim.Time, ok bool) {
			if !ok && attempts < m.flt.MaxRetries() {
				attempts++
				m.retries++
				m.pr.Emit(probe.KindRetry, int32(c.Node), int64(now), int64(attempts))
				backoff := sim.Duration(m.flt.RetryLatencyUS()) << (attempts - 1)
				//sddsvet:ignore hotalloc -- fault path: one re-write closure per failed chunk
				m.eng.ScheduleFunc(backoff, "mpiio.write-retry", func(at sim.Time) {
					if issue() != nil {
						chunkDone(at, false) // validated config: unreachable
					}
				})
				return
			}
			if !ok {
				m.failedWrites++
			}
			chunkDone(now, ok)
		}
		return m.net.Transfer(c.Node, c.Length, func(sim.Time) {
			if issue() != nil {
				//sddsvet:ignore hotalloc -- error path: completes the chunk on a setup bug
				m.eng.ScheduleFunc(0, "mpiio.write-err", func(at sim.Time) { chunkDone(at, false) })
			}
		})
	}, done)
}

// SignatureFor returns the I/O-node signature of a byte range of a file
// (after wrap normalization) — what the compiler attaches to accesses.
func (m *Middleware) SignatureFor(file int, offset, length int64) stripe.Signature {
	return m.layout.SignatureFor(m.wrap(file, offset), length)
}

// forEachChunk splits the range, dispatches fn per chunk and calls done
// when all chunks complete, with ok = every chunk succeeded. fn receives
// both the ok-carrying completion (chunkDone) and a success-only adapter
// (chunkOK) it can hand to callbacks that cannot fail, e.g. the network
// delivery, without allocating a wrapper per chunk.
func (m *Middleware) forEachChunk(file int, offset, length int64, fn func(stripe.Chunk, func(sim.Time, bool), func(sim.Time)) error, done func(now sim.Time, ok bool)) error {
	offset = m.wrap(file, offset)
	chunks := m.layout.Chunks(offset, length)
	if len(chunks) == 0 {
		return fmt.Errorf("mpiio: empty chunk set for off=%d len=%d", offset, length)
	}
	remaining := len(chunks)
	allOK := true
	chunkDone := func(now sim.Time, ok bool) {
		if !ok {
			allOK = false
		}
		remaining--
		if remaining == 0 && done != nil {
			done(now, allOK)
		}
	}
	chunkOK := func(now sim.Time) { chunkDone(now, true) }
	for _, c := range chunks {
		if c.Node < 0 || c.Node >= len(m.nodes) {
			return fmt.Errorf("mpiio: chunk mapped to invalid node %d", c.Node)
		}
		if err := fn(c, chunkDone, chunkOK); err != nil {
			return err
		}
	}
	return nil
}
