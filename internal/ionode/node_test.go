package ionode

import (
	"testing"
	"testing/quick"

	"sdds/internal/sim"
)

func testNode(t *testing.T, mutate func(*Config)) (*sim.Engine, *Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(eng, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Members = 0 },
		func(c *Config) { c.CacheBytes = 0 },
		func(c *Config) { c.UnitBytes = 0 },
		func(c *Config) { c.PrefetchDepth = -1 },
		func(c *Config) { c.CacheHitTime = -1 },
		func(c *Config) { c.Level = RAID5; c.Members = 2 },
		func(c *Config) { c.Level = RAID10; c.Members = 3 },
		func(c *Config) { c.DiskParams.MaxRPM = 0 },
	}
	for i, m := range muts {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestParseRAID(t *testing.T) {
	for s, want := range map[string]RAIDLevel{"RAID0": RAID0, "5": RAID5, "RAID10": RAID10} {
		got, err := ParseRAID(s)
		if err != nil || got != want {
			t.Errorf("ParseRAID(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRAID("RAID6"); err == nil {
		t.Error("RAID6 accepted")
	}
	if RAIDLevel(9).String() != "invalid" {
		t.Error("unknown level must stringify invalid")
	}
}

func TestRAID5MappingReadAndWrite(t *testing.T) {
	// 3 members: row 0 parity on disk 0, data units on disks 1, 2.
	read, err := raidMap(RAID5, 3, 0, 0, 100, false, 512, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(read) != 1 || read[0].disk != 1 || read[0].write {
		t.Fatalf("read mapping = %+v", read)
	}
	write, err := raidMap(RAID5, 3, 1, 0, 100, true, 512, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(write) != 2 {
		t.Fatalf("RAID5 write mapped to %d ops, want data+parity", len(write))
	}
	if write[0].disk != 2 || write[1].disk != 0 || !write[1].write {
		t.Fatalf("write mapping = %+v", write)
	}
	// Row 1 (units 2,3): parity rotates to disk 1.
	w2, _ := raidMap(RAID5, 3, 2, 0, 100, true, 512, 64<<10)
	if w2[1].disk != 1 {
		t.Fatalf("rotating parity: row 1 parity on %d, want 1", w2[1].disk)
	}
}

func TestRAID10MappingMirrorsWrites(t *testing.T) {
	w, err := raidMap(RAID10, 4, 0, 0, 100, true, 512, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w[0].disk != 0 || w[1].disk != 1 {
		t.Fatalf("RAID10 write = %+v", w)
	}
	// Reads alternate mirrors across rows of the same pair. Pair count = 2,
	// so units 0, 4, 8 are rows 0, 2, 4 of pair 0... unit = pair + row*pairs.
	r0, _ := raidMap(RAID10, 4, 0, 0, 100, false, 512, 64<<10)
	r1, _ := raidMap(RAID10, 4, 2, 0, 100, false, 512, 64<<10) // pair 0, row 1
	if r0[0].disk == r1[0].disk {
		t.Fatalf("RAID10 reads did not alternate mirrors: %d vs %d", r0[0].disk, r1[0].disk)
	}
}

func TestRAID0SingleOp(t *testing.T) {
	ios, err := raidMap(RAID0, 4, 7, 1024, 512, false, 512, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ios) != 1 || ios[0].disk != 3 {
		t.Fatalf("RAID0 mapping = %+v", ios)
	}
	// Sector: row 1 (unit 7 / 4 members), 128 sectors per unit, +2 offset.
	if want := int64(1*128 + 2); ios[0].sector != want {
		t.Fatalf("sector = %d, want %d", ios[0].sector, want)
	}
}

// Property: RAID5 parity disk is never the data disk, and every unit in a
// row maps to a distinct disk.
func TestPropertyRAID5RowDisjoint(t *testing.T) {
	f := func(rowRaw uint16, membersRaw uint8) bool {
		members := int(membersRaw%6) + 3 // 3..8
		row := int64(rowRaw % 1000)
		dataPerRow := int64(members - 1)
		used := map[int]bool{}
		for k := int64(0); k < dataPerRow; k++ {
			unit := row*dataPerRow + k
			ios, err := raidMap(RAID5, members, unit, 0, 64<<10, true, 512, 64<<10)
			if err != nil || len(ios) != 2 {
				return false
			}
			data, parity := ios[0], ios[1]
			if data.disk == parity.disk {
				return false
			}
			if used[data.disk] {
				return false // two data units of one row on the same disk
			}
			used[data.disk] = true
			if parity.disk != int(row%int64(members)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMissThenHit(t *testing.T) {
	eng, n := testNode(t, nil)
	var missDone, hitDone sim.Time
	if err := n.Read(1, 0, 0, 4096, func(now sim.Time, _ bool) { missDone = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if missDone == 0 {
		t.Fatal("miss never completed")
	}
	base := eng.Now()
	if err := n.Read(1, 0, 0, 4096, func(now sim.Time, _ bool) { hitDone = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if hitDone-base != n.Config().CacheHitTime {
		t.Fatalf("hit latency = %v, want %v", hitDone-base, n.Config().CacheHitTime)
	}
	hits, misses, _ := n.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats: hits=%d misses=%d", hits, misses)
	}
}

func TestReadValidation(t *testing.T) {
	_, n := testNode(t, nil)
	if err := n.Read(1, 0, 0, 0, func(sim.Time, bool) {}); err == nil {
		t.Fatal("zero-length read accepted")
	}
	if err := n.Read(1, 0, -1, 10, func(sim.Time, bool) {}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := n.Read(1, 0, 0, n.Config().UnitBytes+1, func(sim.Time, bool) {}); err == nil {
		t.Fatal("cross-unit read accepted")
	}
	if err := n.Write(1, 0, 0, 0, func(sim.Time, bool) {}); err == nil {
		t.Fatal("zero-length write accepted")
	}
}

func TestMissCoalescing(t *testing.T) {
	eng, n := testNode(t, nil)
	done := 0
	for i := 0; i < 3; i++ {
		if err := n.Read(1, 5, 0, 4096, func(sim.Time, bool) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 3 {
		t.Fatalf("%d of 3 coalesced readers completed", done)
	}
	// Only one member-disk fetch should have happened for the three reads.
	var reads int64
	for _, d := range n.Disks() {
		reads += d.Stats().Completed
	}
	if reads != 1 {
		t.Fatalf("member disks served %d requests, want 1 (coalesced)", reads)
	}
}

func TestWriteTouchesParityRAID5(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.Level = RAID5; c.Members = 3 })
	if err := n.Write(1, 0, 0, 4096, func(sim.Time, bool) {}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var writes int64
	for _, d := range n.Disks() {
		writes += d.Stats().Completed
	}
	if writes != 2 {
		t.Fatalf("RAID5 write hit %d disks, want 2 (data+parity)", writes)
	}
}

func TestStridePrefetch(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.PrefetchDepth = 2 })
	// Three sequential unit reads establish stride 1 → prefetch kicks in.
	for u := int64(0); u < 3; u++ {
		if err := n.Read(1, u, 0, 4096, func(sim.Time, bool) {}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	if n.Stats().PrefetchIssued == 0 {
		t.Fatal("sequential reads triggered no prefetch")
	}
	// The prefetched unit must now hit.
	_, missesBefore, _ := n.CacheStats()
	if err := n.Read(1, 3, 0, 4096, func(sim.Time, bool) {}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	_, missesAfter, _ := n.CacheStats()
	if missesAfter != missesBefore {
		t.Fatal("read of prefetched unit missed")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.PrefetchDepth = 0 })
	for u := int64(0); u < 4; u++ {
		if err := n.Read(1, u, 0, 4096, func(sim.Time, bool) {}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	if n.Stats().PrefetchIssued != 0 {
		t.Fatal("prefetch issued despite depth 0")
	}
}

func TestEnergyAccumulatesAcrossMembers(t *testing.T) {
	eng, n := testNode(t, nil)
	eng.RunUntil(sim.Second)
	j := n.EnergyJoules(eng.Now())
	// All member disks idle at 17.1 W for 1 s.
	want := float64(n.Config().Members) * 17.1
	if j < want*0.99 || j > want*1.01 {
		t.Fatalf("node energy = %v J, want ≈%v", j, want)
	}
}

func TestSmallCacheEvicts(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.CacheBytes = 128 << 10 }) // 2 units
	for u := int64(0); u < 5; u++ {
		if err := n.Read(1, u*10, 0, 4096, func(sim.Time, bool) {}); err != nil { // stride 10, no prefetch match
			t.Fatal(err)
		}
		eng.Run()
	}
	_, _, evictions := n.CacheStats()
	if evictions == 0 {
		t.Fatal("small cache never evicted")
	}
}

func TestWriteBackAbsorbsWrites(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.WriteBack = true; c.FlushEpoch = sim.Second })
	var acked sim.Time
	if err := n.Write(1, 0, 0, 4096, func(now sim.Time, _ bool) { acked = now }); err != nil {
		t.Fatal(err)
	}
	// The ack arrives at cache speed, long before any disk write.
	eng.RunUntil(sim.MilliToTime(1))
	if acked == 0 {
		t.Fatal("write-back ack not delivered at cache speed")
	}
	var diskWrites int64
	for _, d := range n.Disks() {
		diskWrites += d.Stats().Completed
	}
	if diskWrites != 0 {
		t.Fatalf("disk saw %d writes before the flush epoch", diskWrites)
	}
	if n.DirtyUnits() != 1 {
		t.Fatalf("DirtyUnits = %d", n.DirtyUnits())
	}
	// After the epoch the dirty unit reaches the member disks.
	eng.RunUntil(2 * sim.Second)
	eng.Run()
	for _, d := range n.Disks() {
		diskWrites += d.Stats().Completed
	}
	if diskWrites == 0 {
		t.Fatal("flush never reached the disks")
	}
	if n.Stats().Flushes != 1 {
		t.Fatalf("Flushes = %d", n.Stats().Flushes)
	}
	if n.DirtyUnits() != 0 {
		t.Fatal("dirty set not cleared by flush")
	}
}

func TestWriteBackCoalescesRewrites(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.WriteBack = true; c.FlushEpoch = sim.Second })
	for i := 0; i < 5; i++ {
		if err := n.Write(1, 7, 0, 4096, func(sim.Time, bool) {}); err != nil {
			t.Fatal(err)
		}
	}
	if n.DirtyUnits() != 1 {
		t.Fatalf("5 rewrites of one unit left %d dirty entries", n.DirtyUnits())
	}
	eng.RunUntil(2 * sim.Second)
	if n.Stats().Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1 (coalesced)", n.Stats().Flushes)
	}
}

func TestWriteBackReadHitsDirtyData(t *testing.T) {
	eng, n := testNode(t, func(c *Config) { c.WriteBack = true })
	if err := n.Write(1, 3, 0, 4096, func(sim.Time, bool) {}); err != nil {
		t.Fatal(err)
	}
	hitsBefore, _, _ := n.CacheStats()
	if err := n.Read(1, 3, 0, 4096, func(sim.Time, bool) {}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.MilliToTime(1))
	hitsAfter, _, _ := n.CacheStats()
	if hitsAfter != hitsBefore+1 {
		t.Fatal("read of dirty unit missed the cache")
	}
}

func TestFlushEpochValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlushEpoch = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative flush epoch accepted")
	}
}
