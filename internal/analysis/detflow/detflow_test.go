package detflow_test

import (
	"testing"

	"sdds/internal/analysis/detflow"
)

// TestDetflowScope pins the deterministic cone: the compiler-side and
// tooling packages whose outputs are golden-compared (or feed files that
// are) are in; the simulation packages (simdet's territory), the probe
// (wall-clock by design), and the service (host-side) stay out.
func TestDetflowScope(t *testing.T) {
	for _, pkg := range []string{
		"sdds/internal/core", "sdds/internal/metrics", "sdds/internal/harness",
		"sdds/internal/benchfmt", "sdds/internal/cliutil", "sdds/cmd/benchcheck",
		"sdds/internal/trace", "sdds/internal/workloads",
	} {
		if !detflow.DetPackages.MatchString(pkg) {
			t.Errorf("DetPackages does not cover %s", pkg)
		}
	}
	for _, pkg := range []string{
		"sdds/internal/sim", "sdds/internal/disk", "sdds/internal/probe",
		"sdds/internal/service", "sdds/cmd/sddsvet",
	} {
		if detflow.DetPackages.MatchString(pkg) {
			t.Errorf("DetPackages must not cover %s", pkg)
		}
	}
}
