package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sdds/internal/fault"
	"sdds/internal/power"
	"sdds/internal/workloads"
)

// TestZeroRateInjectorMatchesGolden proves the fault hooks are free: a
// live injector with every rate zero must reproduce the committed golden
// fingerprints bit for bit on all 24 configurations. This is the headline
// acceptance criterion of the fault-injection layer — attaching it cannot
// perturb a fault-free simulation by even one event.
func TestZeroRateInjectorMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	want := make(map[string][]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	zero := fault.DefaultConfig() // all rates zero, knobs at defaults
	checked := 0
	for _, spec := range workloads.All() {
		prog := spec.Build(goldenScale)
		for _, kind := range []power.Kind{power.KindDefault, power.KindHistory} {
			for _, scheduling := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Seed = goldenSeed
				cfg.Policy = power.Config{Kind: kind}
				cfg.Scheduling = scheduling
				cfg.Faults = &zero
				res, err := Run(prog, cfg)
				if err != nil {
					t.Fatalf("%s/%v/sched=%v: %v", spec.Name, kind, scheduling, err)
				}
				key := goldenKey(spec.Name, kind, scheduling)
				w, ok := want[key]
				if !ok {
					t.Fatalf("%s: missing from golden file", key)
				}
				got := goldenFingerprint(res)
				if len(got) != len(w) {
					t.Fatalf("%s: %d fields vs golden %d", key, len(got), len(w))
				}
				for i := range w {
					if got[i] != w[i] {
						t.Errorf("%s: zero-rate injector changed field %q (golden %q)", key, got[i], w[i])
					}
				}
				if res.Faults == nil {
					t.Fatalf("%s: injected run carries no FaultStats block", key)
				}
				if res.Faults.Total() != 0 {
					t.Fatalf("%s: zero-rate injector fired %d faults", key, res.Faults.Total())
				}
				checked++
			}
		}
	}
	if checked != 24 {
		t.Fatalf("checked %d configurations, want 24", checked)
	}
}

// injectedConfig is the stress fault model the determinism and degradation
// tests share: every site enabled, rates high enough that a small run
// exercises every degradation path.
func injectedConfig() *fault.Config {
	fc := fault.DefaultConfig()
	fc.Rates[fault.SiteDiskRead] = 0.05
	fc.Rates[fault.SiteDiskWrite] = 0.05
	fc.Rates[fault.SiteBadSector] = 0.03
	fc.Rates[fault.SiteSpinUpFail] = 0.2
	fc.Rates[fault.SiteSpinUpDelay] = 0.2
	fc.Rates[fault.SiteNetDrop] = 0.02
	fc.Rates[fault.SiteNetDup] = 0.02
	fc.Rates[fault.SiteNodeStall] = 0.02
	fc.Seed = 5
	return &fc
}

// TestInjectedRunDeterministic asserts the other acceptance criterion: a
// fixed seed plus a fixed fault config reproduces a byte-identical Result
// across repeated executions, fault pattern included.
func TestInjectedRunDeterministic(t *testing.T) {
	spec, err := workloads.ByName("hf")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(0.05)
	run := func() *Result {
		cfg := DefaultConfig()
		cfg.Seed = goldenSeed
		cfg.Scheduling = true
		cfg.Faults = injectedConfig()
		res, err := Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	fa, fb := goldenFingerprint(a), goldenFingerprint(b)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Errorf("injected rerun diverged at field %q vs %q", fa[i], fb[i])
		}
	}
	if a.Faults.Total() == 0 {
		t.Fatal("stress fault config injected nothing")
	}
	if a.Faults.Total() != b.Faults.Total() {
		t.Fatalf("injected fault totals differ: %d vs %d", a.Faults.Total(), b.Faults.Total())
	}
	for i := range a.Faults.Injected {
		if a.Faults.Injected[i] != b.Faults.Injected[i] {
			t.Errorf("site %s: %d vs %d injected", fault.Site(i), a.Faults.Injected[i], b.Faults.Injected[i])
		}
	}
}

// TestInjectedRunDegradesGracefully asserts a heavily faulted run still
// terminates with populated degradation counters and fault metrics.
func TestInjectedRunDegradesGracefully(t *testing.T) {
	spec, err := workloads.ByName("sar")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(0.05)
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Scheduling = true
	cfg.Faults = injectedConfig()
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Faults
	if fs == nil || fs.Total() == 0 {
		t.Fatal("no faults recorded")
	}
	if fs.DiskTransientErrors == 0 {
		t.Error("no transient disk errors surfaced")
	}
	if fs.NodeRetries == 0 {
		t.Error("no I/O-node retries despite transient errors")
	}
	if fs.BadSectorRemaps == 0 {
		t.Error("no bad-sector remaps")
	}
	// Every injected fault must be visible in the metrics registry too.
	var metricTotal float64
	for _, m := range res.Metrics {
		if m.Name == "fault.injected_total" {
			metricTotal = m.Value
		}
	}
	if int64(metricTotal) != fs.Total() {
		t.Errorf("fault.injected_total metric %v != FaultStats total %d", metricTotal, fs.Total())
	}
	// The run must have made progress despite the fault storm.
	if res.ExecTime <= 0 || res.DiskRequests == 0 {
		t.Errorf("faulted run made no progress: exec=%v requests=%d", res.ExecTime, res.DiskRequests)
	}
}

// TestFaultFreeRunCarriesNoFaultBlock pins the nil contract: without
// Config.Faults the result has no FaultStats and no fault metrics.
func TestFaultFreeRunCarriesNoFaultBlock(t *testing.T) {
	spec, err := workloads.ByName("hf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 1
	res, err := Run(spec.Build(0.02), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Fatal("fault-free run carries a FaultStats block")
	}
	for _, m := range res.Metrics {
		if len(m.Name) >= 6 && m.Name[:6] == "fault." {
			t.Fatalf("fault-free run exports fault metric %s", m.Name)
		}
	}
}

// TestExtremeRatesTerminate proves the bounded-retry design: even with
// every rate at 1.0 the executor abandons instances after MaxRetries
// rather than looping forever, and the run completes.
func TestExtremeRatesTerminate(t *testing.T) {
	spec, err := workloads.ByName("hf")
	if err != nil {
		t.Fatal(err)
	}
	fc := fault.DefaultConfig()
	for s := 0; s < fault.NumSites(); s++ {
		fc.Rates[s] = 1.0
	}
	// Keep rate-1 spin-up failures from deadlocking progress is the model's
	// job; the test just demands termination.
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Faults = &fc
	res, err := Run(spec.Build(0.01), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.IOAbandoned == 0 {
		t.Error("rate-1 faults abandoned no instances (retry loop unbounded?)")
	}
	if res.Faults.NodeRetriesExhausted == 0 {
		t.Error("rate-1 faults never exhausted node retries")
	}
}
