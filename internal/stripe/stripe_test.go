package stripe

import (
	"testing"
	"testing/quick"
)

func TestSignatureBasics(t *testing.T) {
	s := NewSignature(16)
	if !s.Empty() || s.Count() != 0 || s.Len() != 16 {
		t.Fatal("fresh signature not empty")
	}
	s.Set(2)
	s.Set(10)
	if s.Empty() || s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if !s.Get(2) || !s.Get(10) || s.Get(3) {
		t.Fatal("Get mismatch")
	}
	// Out-of-range accesses are safe no-ops.
	s.Set(-1)
	s.Set(16)
	if s.Get(-1) || s.Get(16) {
		t.Fatal("out-of-range Get returned true")
	}
	if s.Count() != 2 {
		t.Fatal("out-of-range Set mutated the signature")
	}
	want := "0010000000100000"
	if s.String() != want {
		t.Fatalf("String = %q, want %q (A1's signature in Fig. 9)", s.String(), want)
	}
}

func TestParseSignature(t *testing.T) {
	s, err := ParseSignature("0110000001100000")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "0110000001100000" {
		t.Fatalf("round-trip = %q", s.String())
	}
	if got := s.Nodes(); len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 9 || got[3] != 10 {
		t.Fatalf("Nodes = %v", got)
	}
	if _, err := ParseSignature("01x0"); err == nil {
		t.Fatal("ParseSignature accepted invalid char")
	}
}

func TestPaperDistanceExamples(t *testing.T) {
	// Fig. 9 signatures on a 16-node architecture.
	g4, _ := ParseSignature("0100000001000000") // A4
	g6, _ := ParseSignature("0110000001100000") // A6
	g7, _ := ParseSignature("1000000010000000") // A7

	// Identical signatures: distance = n − count + 0.
	if d := g4.Distance(g4); d != 16-2 {
		t.Fatalf("self distance = %d, want 14", d)
	}
	// Disjoint signatures: similarity 0, difference 4 → 16 − 0 + 4 = 20.
	if d := g4.Distance(g7); d != 20 {
		t.Fatalf("disjoint distance = %d, want 20", d)
	}
	// Subset: g4 ⊂ g6: similarity 2, difference 2 → 16 − 2 + 2 = 16.
	if d := g4.Distance(g6); d != 16 {
		t.Fatalf("subset distance = %d, want 16", d)
	}
}

func TestInverseDistanceZeroCase(t *testing.T) {
	// distance can be 0 only when n − similarity + difference = 0, i.e.
	// both signatures are all-ones.
	a := SignatureOf(4, 0, 1, 2, 3)
	b := SignatureOf(4, 0, 1, 2, 3)
	if d := a.Distance(b); d != 0 {
		t.Fatalf("all-ones distance = %d, want 0", d)
	}
	if inv := a.InverseDistance(b); inv != 2 {
		t.Fatalf("InverseDistance at 0 = %v, want 2 (paper's convention)", inv)
	}
	c := SignatureOf(4, 0)
	if inv := c.InverseDistance(SignatureOf(4, 0)); inv != 1.0/3 {
		t.Fatalf("InverseDistance = %v, want 1/3", inv)
	}
}

func TestOrAndClone(t *testing.T) {
	a := SignatureOf(8, 0, 1)
	b := SignatureOf(8, 1, 5)
	u := a.Or(b)
	if u.String() != "11000100" {
		t.Fatalf("Or = %q", u.String())
	}
	if a.Count() != 2 {
		t.Fatal("Or mutated receiver")
	}
	c := a.Clone()
	c.Set(7)
	if a.Get(7) {
		t.Fatal("Clone shares storage")
	}
	a.OrInPlace(b)
	if !a.Equal(u) {
		t.Fatalf("OrInPlace = %q, want %q", a.String(), u.String())
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if NewSignature(4).Equal(NewSignature(8)) {
		t.Fatal("signatures of different lengths compared equal")
	}
}

// Property: distance is symmetric and satisfies the definition
// n − sim + diff for random bit sets.
func TestPropertyDistanceSymmetric(t *testing.T) {
	f := func(xs, ys []bool) bool {
		n := 24
		a, b := NewSignature(n), NewSignature(n)
		for i, v := range xs {
			if v {
				a.Set(i % n)
			}
		}
		for i, v := range ys {
			if v {
				b.Set(i % n)
			}
		}
		if a.Distance(b) != b.Distance(a) {
			return false
		}
		return a.Distance(b) == n-a.Similarity(b)+a.Difference(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a signature is at distance n − k from itself (k = popcount),
// and at distance n + 2k from a fully disjoint signature of equal size.
func TestPropertyDistanceExtremes(t *testing.T) {
	f := func(bitsIn []bool) bool {
		n := 32
		a := NewSignature(n)
		for i, v := range bitsIn {
			if v && i < n/2 {
				a.Set(i)
			}
		}
		k := a.Count()
		if a.Distance(a) != n-k {
			return false
		}
		// Shift the set into the disjoint upper half.
		b := NewSignature(n)
		for _, i := range a.Nodes() {
			b.Set(i + n/2)
		}
		return a.Distance(b) == n+2*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := DefaultLayout().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{NumNodes: 0, StripeSize: 1},
		{NumNodes: 4, StripeSize: 0},
		{NumNodes: 4, StripeSize: 64, FirstNode: -1},
		{NumNodes: 4, StripeSize: 64, FirstNode: 4},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %d validated", i)
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	l := Layout{NumNodes: 4, StripeSize: 100}
	for k := int64(0); k < 12; k++ {
		if got := l.NodeOf(k); got != int(k%4) {
			t.Fatalf("NodeOf(%d) = %d", k, got)
		}
	}
	l.FirstNode = 2
	if l.NodeOf(0) != 2 || l.NodeOf(3) != 1 {
		t.Fatal("FirstNode offset not applied")
	}
}

func TestChunksSplitting(t *testing.T) {
	l := Layout{NumNodes: 4, StripeSize: 100}
	// Range [50, 250): parts of units 0,1,2.
	chunks := l.Chunks(50, 200)
	if len(chunks) != 3 {
		t.Fatalf("len = %d, want 3", len(chunks))
	}
	wants := []Chunk{
		{Node: 0, Unit: 0, Offset: 50, Length: 50},
		{Node: 1, Unit: 1, Offset: 0, Length: 100},
		{Node: 2, Unit: 2, Offset: 0, Length: 50},
	}
	for i, w := range wants {
		if chunks[i] != w {
			t.Fatalf("chunk %d = %+v, want %+v", i, chunks[i], w)
		}
	}
	if l.Chunks(0, 0) != nil || l.Chunks(-1, 10) != nil {
		t.Fatal("degenerate ranges must return nil")
	}
}

// Property: chunk lengths sum to the request length and chunks are
// contiguous in file order.
func TestPropertyChunksCoverRange(t *testing.T) {
	f := func(off uint16, length uint16, nodes uint8, unit uint8) bool {
		l := Layout{NumNodes: int(nodes%7) + 1, StripeSize: int64(unit%200) + 1}
		o, n := int64(off), int64(length)
		chunks := l.Chunks(o, n)
		if n == 0 {
			return chunks == nil
		}
		var sum int64
		pos := o
		for _, c := range chunks {
			if c.Length <= 0 || c.Length > l.StripeSize {
				return false
			}
			if c.Unit*l.StripeSize+c.Offset != pos {
				return false
			}
			if c.Node != l.NodeOf(c.Unit) {
				return false
			}
			pos += c.Length
			sum += c.Length
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureForMatchesChunks(t *testing.T) {
	l := DefaultLayout()
	sig := l.SignatureFor(100<<10, 300<<10)
	seen := map[int]bool{}
	for _, c := range l.Chunks(100<<10, 300<<10) {
		seen[c.Node] = true
	}
	for i := 0; i < l.NumNodes; i++ {
		if sig.Get(i) != seen[i] {
			t.Fatalf("node %d: sig=%v chunks=%v", i, sig.Get(i), seen[i])
		}
	}
}

func TestSignatureForWholeRingWrap(t *testing.T) {
	l := Layout{NumNodes: 4, StripeSize: 10}
	// 100 bytes = 10 units > 4 nodes: all nodes used.
	if got := l.SignatureFor(0, 100).Count(); got != 4 {
		t.Fatalf("wrap signature count = %d, want 4", got)
	}
}

// Property: SignatureFor equals the union of chunk nodes for random ranges.
func TestPropertySignatureMatchesChunkNodes(t *testing.T) {
	f := func(off uint16, length uint16, firstNode uint8) bool {
		l := Layout{NumNodes: 8, StripeSize: 64, FirstNode: int(firstNode % 8)}
		o, n := int64(off), int64(length)
		sig := l.SignatureFor(o, n)
		want := NewSignature(8)
		for _, c := range l.Chunks(o, n) {
			want.Set(c.Node)
		}
		return sig.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignatureDistance(b *testing.B) {
	x := SignatureOf(64, 1, 5, 9, 33, 60)
	y := SignatureOf(64, 1, 6, 9, 35)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Distance(y)
	}
}
