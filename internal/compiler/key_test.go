package compiler

import (
	"testing"

	"sdds/internal/core"
	"sdds/internal/stripe"
)

func mustKey(t *testing.T, opts Options) string {
	t.Helper()
	key, ok := KeyFor(testProgram(), opts)
	if !ok {
		t.Fatalf("KeyFor uncacheable for %+v", opts)
	}
	return key
}

// The key must be invariant to how the options were written down: a
// zero-value CoalesceD and an explicit 1 denote the same compilation.
func TestKeyZeroValueDefaults(t *testing.T) {
	base := DefaultOptions(4)
	explicit := base
	explicit.CoalesceD = 1
	if mustKey(t, base) != mustKey(t, explicit) {
		t.Fatal("CoalesceD 0 and 1 produced different keys")
	}
}

// Every semantic option must move the key.
func TestKeySemanticSensitivity(t *testing.T) {
	base := DefaultOptions(4)
	mutations := map[string]func(*Options){
		"procs":        func(o *Options) { o.Procs = 8 },
		"theta":        func(o *Options) { o.Theta = 8 },
		"delta":        func(o *Options) { o.Delta = 40 },
		"slotbytes":    func(o *Options) { o.SlotBytes = 128 << 10 },
		"maxadvance":   func(o *Options) { o.MaxAdvance = 10 },
		"coalesce":     func(o *Options) { o.CoalesceD = 2 },
		"forceprofile": func(o *Options) { o.ForceProfile = true },
		"order":        func(o *Options) { o.Order = core.OrderInput },
		"noweights":    func(o *Options) { o.NoWeights = true },
		"layout-nodes": func(o *Options) { o.Layout.NumNodes = 16 },
		"layout-size":  func(o *Options) { o.Layout.StripeSize = 128 << 10 },
		"layout-first": func(o *Options) { o.Layout.FirstNode = 3 },
	}
	baseKey := mustKey(t, base)
	seen := map[string]string{"base": baseKey}
	for name, mut := range mutations {
		o := base
		mut(&o)
		k := mustKey(t, o)
		if k == baseKey {
			t.Errorf("%s: key unchanged by semantic option", name)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		seen[name] = k
	}
}

// The key is also a function of the program content.
func TestKeyProgramSensitivity(t *testing.T) {
	opts := DefaultOptions(4)
	base, ok := KeyFor(testProgram(), opts)
	if !ok {
		t.Fatal("uncacheable")
	}
	p := testProgram()
	p.Nests[1].Trips = 64
	k, ok := KeyFor(p, opts)
	if !ok {
		t.Fatal("uncacheable")
	}
	if k == base {
		t.Fatal("key unchanged by program trip count")
	}
	p2 := testProgram()
	p2.Nests[1].Body[0].Region.Len = 16 << 10
	if k2, _ := KeyFor(p2, opts); k2 == base {
		t.Fatal("key unchanged by statement region")
	}
}

// Non-serializable inputs defeat keying: a custom region function or a
// random tie breaker must mark the compile uncacheable.
func TestKeyUncacheableInputs(t *testing.T) {
	opts := DefaultOptions(4)
	opts.RandomTies = func(n int) int { return 0 }
	if _, ok := KeyFor(testProgram(), opts); ok {
		t.Fatal("RandomTies keyed as cacheable")
	}
	p := testProgram()
	p.Nests[1].Body[1].Custom = func(i, proc int) (int64, int64) { return 0, 32 << 10 }
	if _, ok := KeyFor(p, DefaultOptions(4)); ok {
		t.Fatal("custom region keyed as cacheable")
	}
}

// Layout defaults: two independently-constructed equal option sets agree.
func TestKeyDeterministic(t *testing.T) {
	a := Options{Procs: 4, Layout: stripe.DefaultLayout(), Delta: 20, Theta: 4, SlotBytes: 256 << 10, MaxAdvance: 40}
	if mustKey(t, a) != mustKey(t, DefaultOptions(4)) {
		t.Fatal("structurally equal options produced different keys")
	}
}
