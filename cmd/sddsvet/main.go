// Command sddsvet is the project's multichecker: it statically enforces the
// simulator's determinism and hot-path contracts over the given package
// patterns (default ./...). It ships four analyzers:
//
//	simdet       nondeterminism sources in simulation packages
//	hotalloc     per-event allocations on the annotated hot path
//	eventretain  retention of free-list-recycled *sim.Event values
//	floatorder   order-dependent float reductions feeding golden output
//
// Exit status is 1 when findings are reported, 2 on load/usage errors, 0
// otherwise. Suppress individual findings with
// //sddsvet:ignore <analyzer> -- <reason>; see DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdds/internal/analysis"
	"sdds/internal/analysis/all"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sddsvet", flag.ContinueOnError)
	var (
		only = fs.String("run", "", "comma-separated analyzer subset (default: all)")
		list = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sddsvet [-run analyzer,...] [package pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := all.Analyzers
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := all.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "sddsvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddsvet:", err)
		return 2
	}
	n, err := analysis.Run(os.Stdout, root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sddsvet:", err)
		return 2
	}
	if n > 0 {
		return 1
	}
	return 0
}
