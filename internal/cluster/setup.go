package cluster

import (
	"fmt"

	"sdds/internal/loop"
	"sdds/internal/sim"
)

// Setup is the reusable pre-simulation state of a (program, procs) pair:
// the validated program, the flat I/O-instance index, per-slot nest
// metadata, and per-nest body costs. None of it depends on runtime knobs
// (seed, policy, θ, buffer, faults), so a sweep over such variants builds
// it once and forks every run off the same snapshot. A Setup is immutable
// after NewSetup and RunPrepared only reads it, making it safe to share
// across concurrent runs.
type Setup struct {
	prog  *loop.Program
	procs int
	slots int

	// Flat I/O-instance index: the instances of (proc p, slot s) are
	// ioFlat[ioOff[p*slots+s]:ioOff[p*slots+s+1]], in statement order.
	ioFlat []loop.IOInstance
	ioOff  []int32

	// Slot metadata: nest index, slot-within-nest, per-nest body cost.
	slotNest     []int
	slotLoc      []int
	nestBodyCost []sim.Duration
}

// NewSetup validates prog and builds the shared pre-simulation state for
// the given process count.
func NewSetup(prog *loop.Program, procs int) (*Setup, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("cluster: procs %d must be positive", procs)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s := &Setup{prog: prog, procs: procs, slots: prog.Slots(procs)}
	s.buildIOIndex(prog.Instances(procs))
	s.buildSlotMeta()
	return s, nil
}

// Program returns the program the setup was built for.
func (s *Setup) Program() *loop.Program { return s.prog }

// Procs returns the process count the setup was built for.
func (s *Setup) Procs() int { return s.procs }

// buildIOIndex builds the flat instance index with a counting sort keyed
// by (proc, slot); Instances' statement order within a (proc, slot) pair
// is preserved.
func (s *Setup) buildIOIndex(insts []loop.IOInstance) {
	cells := s.procs * s.slots
	s.ioOff = make([]int32, cells+1)
	for _, in := range insts {
		s.ioOff[in.Proc*s.slots+in.Slot+1]++
	}
	for k := 0; k < cells; k++ {
		s.ioOff[k+1] += s.ioOff[k]
	}
	s.ioFlat = make([]loop.IOInstance, len(insts))
	cur := make([]int32, cells)
	for _, in := range insts {
		k := in.Proc*s.slots + in.Slot
		s.ioFlat[s.ioOff[k]+cur[k]] = in
		cur[k]++
	}
}

func (s *Setup) buildSlotMeta() {
	s.slotNest = make([]int, s.slots)
	s.slotLoc = make([]int, s.slots)
	slot := 0
	for ni := range s.prog.Nests {
		base := s.prog.NestSlotOffset(s.procs, ni)
		next := s.slots
		if ni+1 < len(s.prog.Nests) {
			next = s.prog.NestSlotOffset(s.procs, ni+1)
		}
		for ; slot < next && slot >= base; slot++ {
			s.slotNest[slot] = ni
			s.slotLoc[slot] = slot - base
		}
	}
	// The compute cost of a nest body never varies per iteration: sum it
	// once here instead of walking n.Body on every (proc, slot).
	s.nestBodyCost = make([]sim.Duration, len(s.prog.Nests))
	for ni, n := range s.prog.Nests {
		var c sim.Duration
		for _, st := range n.Body {
			if st.Kind == loop.StmtCompute {
				c += st.Cost
			}
		}
		s.nestBodyCost[ni] = c
	}
}
