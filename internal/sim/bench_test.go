package sim

import (
	"container/heap"
	"testing"
)

// BenchmarkScheduleFireRecycled is the steady-state hot path: one event in
// flight, rescheduled through ScheduleArg on every fire. The acceptance bar
// is 0 allocs/op — the event comes off the free list and the callback is a
// pre-bound ArgHandler, so nothing escapes.
func BenchmarkScheduleFireRecycled(b *testing.B) {
	e := NewEngine(1)
	var cb ArgHandler = func(now Time, arg any) {}
	e.ScheduleArg(1, "prime", cb, e)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(1, "steady", cb, e)
		e.Step()
	}
}

// BenchmarkScheduleFireDepth1000 measures schedule+fire with a standing
// queue of 1000 events, the depth a busy cluster run sustains; ns/op here is
// the engine's per-event cost including realistic heap sift depth.
func BenchmarkScheduleFireDepth1000(b *testing.B) {
	e := NewEngine(1)
	var cb ArgHandler = func(now Time, arg any) {}
	for j := 0; j < 1000; j++ {
		e.ScheduleArg(Duration(j%97+1), "fill", cb, e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(Duration(i%97+1), "steady", cb, e)
		e.Step()
	}
}

// BenchmarkEngineScheduleRunArg is BenchmarkEngineScheduleRun on the
// de-closured path: 1000 events scheduled then drained per iteration.
func BenchmarkEngineScheduleRunArg(b *testing.B) {
	var cb ArgHandler = func(now Time, arg any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.ScheduleArg(Duration(j%97), "b", cb, e)
		}
		e.Run()
	}
}

// ---------------------------------------------------------------------------
// container/heap baseline: the seed engine's queue, preserved verbatim so
// BENCH_sim.json keeps an in-tree reference point for the ≥2× ns/event
// acceptance bar. Events are heap-allocated per schedule and flow through
// the interface-boxed Push/Pop of container/heap.

type baseEvent struct {
	at    Time
	seq   uint64
	fn    Handler
	index int
}

type baseQueue []*baseEvent

func (q baseQueue) Len() int { return len(q) }

func (q baseQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q baseQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *baseQueue) Push(x any) {
	ev := x.(*baseEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *baseQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

type baseEngine struct {
	now   Time
	queue baseQueue
	seq   uint64
}

func (e *baseEngine) schedule(delay Duration, fn Handler) {
	e.seq++
	heap.Push(&e.queue, &baseEvent{at: e.now + delay, seq: e.seq, fn: fn})
}

func (e *baseEngine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*baseEvent)
	e.now = ev.at
	ev.fn(e.now)
	return true
}

// BenchmarkContainerHeapRecycled is the baseline for
// BenchmarkScheduleFireRecycled: one event in flight, allocated per
// schedule and boxed through container/heap.
func BenchmarkContainerHeapRecycled(b *testing.B) {
	e := &baseEngine{}
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.schedule(1, fn)
		e.step()
	}
}

// BenchmarkContainerHeapScheduleFire is the baseline for
// BenchmarkScheduleFireDepth1000: same standing depth, same workload, seed
// binary-heap queue with per-event allocation.
func BenchmarkContainerHeapScheduleFire(b *testing.B) {
	e := &baseEngine{}
	fn := func(Time) {}
	for j := 0; j < 1000; j++ {
		e.schedule(Duration(j%97+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.schedule(Duration(i%97+1), fn)
		e.step()
	}
}

// BenchmarkContainerHeapScheduleRun is the baseline for
// BenchmarkEngineScheduleRunArg (and the seed BenchmarkEngineScheduleRun):
// 1000 events scheduled and drained per iteration.
func BenchmarkContainerHeapScheduleRun(b *testing.B) {
	fn := func(Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &baseEngine{}
		for j := 0; j < 1000; j++ {
			e.schedule(Duration(j%97), fn)
		}
		for e.step() {
		}
	}
}
