package netsim

import (
	"testing"

	"sdds/internal/fault"
	"sdds/internal/sim"
)

// faultNet builds a network whose engine carries an injector over fc.
func faultNet(t *testing.T, fc fault.Config, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	eng.SetFaults(fault.NewInjector(&fc, 1))
	return eng, MustNew(eng, cfg)
}

func TestNetDropRetransmitsBounded(t *testing.T) {
	fc := fault.DefaultConfig()
	fc.Rates[fault.SiteNetDrop] = 1.0
	eng, n := faultNet(t, fc, Config{LatencyOneWay: 100, LinkMBps: 1, NumNodes: 1})
	delivered := 0
	var at sim.Time
	if err := n.Transfer(0, 1000, func(now sim.Time) { delivered++; at = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// The transport is reliable: even at rate 1 the message arrives exactly
	// once, after MaxRetries lost copies.
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly once", delivered)
	}
	// Clean delivery would be 1100 (1000 µs occupancy + 100 µs latency).
	// Each of the three drops burns a doubling backoff (1000, 2000, 4000)
	// plus a fresh occupancy (1000) before the copy that gets through:
	// 1000 + (1000+1000) + (2000+1000) + (4000+1000) + 100 = 11100.
	if at != 11100 {
		t.Fatalf("delivery at %v, want 11100", at)
	}
	drops, dups := n.FaultStats()
	if drops != int64(fc.MaxRetries) || dups != 0 {
		t.Fatalf("drops=%d dups=%d, want %d bounded drops", drops, dups, fc.MaxRetries)
	}
}

func TestNetDupWastesBandwidthWithoutDelayingDelivery(t *testing.T) {
	fc := fault.DefaultConfig()
	fc.Rates[fault.SiteNetDup] = 1.0
	eng, n := faultNet(t, fc, Config{LatencyOneWay: 0, LinkMBps: 1, NumNodes: 1})
	var first, second sim.Time
	_ = n.Transfer(0, 1000, func(now sim.Time) { first = now })
	_ = n.Transfer(0, 1000, func(now sim.Time) { second = now })
	eng.Run()
	// The duplicate copy serializes behind the real delivery, so the first
	// message still lands at 1000; the second waits out the spurious copy
	// (2000..3000) instead of starting at 1000.
	if first != 1000 {
		t.Fatalf("first delivery at %v, want 1000 (dup must not delay its own message)", first)
	}
	if second != 3000 {
		t.Fatalf("second delivery at %v, want 3000 (behind the duplicate copy)", second)
	}
	if _, dups := n.FaultStats(); dups != 2 {
		t.Fatalf("dups = %d, want 2", dups)
	}
}

func TestFaultFreeNetworkHasZeroFaultStats(t *testing.T) {
	eng := sim.NewEngine(1)
	n := MustNew(eng, Config{LatencyOneWay: 0, LinkMBps: 1, NumNodes: 1})
	_ = n.Transfer(0, 1000, func(sim.Time) {})
	eng.Run()
	if d, p := n.FaultStats(); d != 0 || p != 0 {
		t.Fatalf("fault-free network recorded drops=%d dups=%d", d, p)
	}
}
