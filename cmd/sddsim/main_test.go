package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdds/internal/diag"
)

func TestRunDescribe(t *testing.T) {
	if err := run([]string{"-app", "sar", "-describe"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run([]string{"-app", "doom"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	if err := run([]string{"-app", "sar", "-policy", "psychic"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTinySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	if err := run([]string{"-app", "madbench2", "-scale", "0.02", "-procs", "8", "-policy", "history", "-scheduling", "-json"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCapturesBundle: -capture-dir makes a successful run leave a
// validated manual bundle with the probe trace, and a timed-out run leave
// a timeout-triggered one.
func TestRunCapturesBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	dir := filepath.Join(t.TempDir(), "capture")
	if err := run([]string{"-app", "madbench2", "-scale", "0.02", "-procs", "8",
		"-json", "-capture-dir", dir}); err != nil {
		t.Fatal(err)
	}
	infos, err := diag.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("captured %d bundles, want 1", len(infos))
	}
	if infos[0].Manifest.Trigger != diag.TriggerManual {
		t.Errorf("trigger = %q, want manual", infos[0].Manifest.Trigger)
	}
	rep, err := diag.Validate(infos[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("bundle invalid: %v", rep.Problems)
	}
	if _, ok := rep.Files["trace.json"]; !ok {
		t.Error("capture without -trace still must include the probe trace")
	}

	if err := run([]string{"-app", "madbench2", "-scale", "0.02", "-procs", "8",
		"-json", "-capture-dir", dir, "-timeout", "1ns"}); err == nil {
		t.Fatal("1ns deadline did not fail the run")
	}
	infos, err = diag.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("captured %d bundles after timeout, want 2", len(infos))
	}
	found := false
	for _, b := range infos {
		if b.Manifest.Trigger == diag.TriggerTimeout {
			found = true
		}
	}
	if !found {
		t.Errorf("no timeout-triggered bundle in %+v", infos)
	}
}

func TestRunWritesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-app", "madbench2", "-scale", "0.02", "-procs", "8",
		"-policy", "history", "-scheduling", "-json", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	diskTracks := 0
	hasSpan, hasInstant := false, false
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				if n, _ := ev.Args["name"].(string); strings.HasPrefix(n, "disk ") {
					diskTracks++
				}
			}
		case "X":
			hasSpan = true
		case "i":
			hasInstant = true
		}
	}
	if diskTracks == 0 || !hasSpan || !hasInstant {
		t.Fatalf("trace missing content: diskTracks=%d span=%v instant=%v", diskTracks, hasSpan, hasInstant)
	}
}
