package sched

import (
	"testing"

	"sdds/internal/core"
	"sdds/internal/sim"
	"sdds/internal/stripe"
)

func TestBufferReserveCommitConsume(t *testing.T) {
	b := MustNewGlobalBuffer(100)
	if !b.Reserve(1, 60) {
		t.Fatal("Reserve failed")
	}
	if b.Reserve(1, 10) {
		t.Fatal("duplicate Reserve succeeded")
	}
	if b.Reserve(2, 50) {
		t.Fatal("over-capacity Reserve succeeded")
	}
	if b.TryConsume(1) {
		t.Fatal("pending entry consumed as hit")
	}
	// The bypass released the space.
	if b.Used() != 0 {
		t.Fatalf("Used = %d after bypass", b.Used())
	}
	if b.Commit(1) {
		t.Fatal("Commit of bypassed entry succeeded")
	}
	// Normal path.
	if !b.Reserve(3, 40) || !b.Commit(3) {
		t.Fatal("reserve+commit failed")
	}
	if !b.Resident(3) {
		t.Fatal("committed entry not resident")
	}
	if !b.TryConsume(3) {
		t.Fatal("hit missed")
	}
	if b.Used() != 0 {
		t.Fatalf("Used = %d after consume", b.Used())
	}
	hits, misses, inserted, dropped := b.Stats()
	if hits != 1 || misses != 1 || inserted != 1 || dropped != 1 {
		t.Fatalf("stats: %d %d %d %d", hits, misses, inserted, dropped)
	}
}

func TestBufferValidation(t *testing.T) {
	if _, err := NewGlobalBuffer(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	b := MustNewGlobalBuffer(10)
	if b.Reserve(1, 0) || b.Reserve(1, 11) {
		t.Fatal("bad sizes accepted")
	}
	b.Abort(99) // no-op must not panic
}

// fakeFetcher records fetches and completes them when told.
type fakeFetcher struct {
	eng     *sim.Engine
	delay   sim.Duration
	fetched []int64
	fail    bool
}

func (f *fakeFetcher) Fetch(file int, offset, length int64, done func(sim.Time, bool)) error {
	if f.fail {
		return errTest
	}
	f.fetched = append(f.fetched, offset)
	f.eng.Schedule(f.delay, "fake.fetch", func(now sim.Time) { done(now, true) })
	return nil
}

var errTest = errFake{}

type errFake struct{}

func (errFake) Error() string { return "fake failure" }

type fakeClock struct{ min int }

func (c *fakeClock) MinSlot() int { return c.min }

func mkEntry(id, slot, orig int) core.Entry {
	return core.Entry{Slot: slot, AccessID: id, Orig: orig, Length: 1, Sig: stripe.SignatureOf(8, 0)}
}

func mkAgent(t *testing.T, eng *sim.Engine, table []core.Entry, infos map[int]AccessInfo, buf *GlobalBuffer, clock LocalClock) (*Agent, *fakeFetcher) {
	t.Helper()
	f := &fakeFetcher{eng: eng, delay: 10}
	resolve := func(id int) (AccessInfo, bool) {
		in, ok := infos[id]
		return in, ok
	}
	a, err := NewAgent(0, table, resolve, f, buf, clock)
	if err != nil {
		t.Fatal(err)
	}
	return a, f
}

func TestAgentFiltersUnmovedEntries(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(1 << 20)
	table := []core.Entry{
		mkEntry(1, 5, 10), // moved earlier → kept
		mkEntry(2, 7, 7),  // at original point → dropped
		mkEntry(3, 9, 8),  // later than original → dropped
	}
	a, _ := mkAgent(t, eng, table, map[int]AccessInfo{}, buf, &fakeClock{min: 100})
	if got := a.PendingEntries(); got != 1 {
		t.Fatalf("kept %d entries, want 1", got)
	}
}

func TestAgentIssuesDueEntries(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(1 << 20)
	infos := map[int]AccessInfo{
		1: {File: 0, Offset: 100, Length: 64, WriterSlot: -1},
		2: {File: 0, Offset: 200, Length: 64, WriterSlot: -1},
	}
	table := []core.Entry{mkEntry(1, 2, 10), mkEntry(2, 6, 12)}
	clock := &fakeClock{min: 3}
	a, f := mkAgent(t, eng, table, infos, buf, clock)
	// Dueness follows the global clock: at min slot 3 only the slot-2
	// entry fires, even though this agent's own process is at slot 5.
	a.AdvanceTo(5, eng.Now())
	if len(f.fetched) != 1 || f.fetched[0] != 100 {
		t.Fatalf("fetched = %v, want [100]", f.fetched)
	}
	clock.min = 6
	a.Pump(eng.Now())
	if len(f.fetched) != 2 {
		t.Fatalf("fetched = %v, want both", f.fetched)
	}
	eng.Run()
	if !buf.Resident(1) || !buf.Resident(2) {
		t.Fatal("prefetched data not resident")
	}
}

func TestAgentDefersOnWriterLocalTime(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(1 << 20)
	clock := &fakeClock{min: 3}
	infos := map[int]AccessInfo{1: {Length: 64, WriterSlot: 5}}
	a, f := mkAgent(t, eng, []core.Entry{mkEntry(1, 2, 20)}, infos, buf, clock)
	a.AdvanceTo(4, eng.Now())
	if len(f.fetched) != 0 {
		t.Fatal("fetched before producer passed the write point")
	}
	_, _, deferred := a.Stats()
	if deferred == 0 {
		t.Fatal("no deferral recorded")
	}
	clock.min = 6
	a.Pump(eng.Now())
	if len(f.fetched) != 1 {
		t.Fatal("fetch not issued after producer advanced")
	}
}

func TestAgentStopsWhenBufferFull(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(100)
	infos := map[int]AccessInfo{
		1: {Length: 80, WriterSlot: -1},
		2: {Length: 80, WriterSlot: -1},
	}
	table := []core.Entry{mkEntry(1, 0, 50), mkEntry(2, 1, 50)}
	a, f := mkAgent(t, eng, table, infos, buf, &fakeClock{min: 100})
	a.AdvanceTo(2, eng.Now())
	if len(f.fetched) != 1 {
		t.Fatalf("fetched %d, want 1 (second blocked on full buffer)", len(f.fetched))
	}
	eng.Run() // first fetch commits
	// Consume entry 1 → space frees → pump issues entry 2.
	if !buf.TryConsume(1) {
		t.Fatal("entry 1 not resident")
	}
	a.Pump(eng.Now())
	if len(f.fetched) != 2 {
		t.Fatal("second fetch not issued after space freed")
	}
}

func TestAgentDropsStaleEntries(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(1 << 20)
	infos := map[int]AccessInfo{1: {Length: 64, WriterSlot: -1}}
	// Due at slot 5, original point 8 — but the process has already reached
	// slot 9 when the agent first runs: prefetching is pointless.
	a, f := mkAgent(t, eng, []core.Entry{mkEntry(1, 5, 8)}, infos, buf, &fakeClock{min: 100})
	a.AdvanceTo(9, eng.Now())
	if len(f.fetched) != 0 {
		t.Fatal("stale entry fetched")
	}
	if a.PendingEntries() != 0 {
		t.Fatal("stale entry not dropped")
	}
}

func TestAgentFetchErrorAbortsReservation(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(100)
	f := &fakeFetcher{eng: eng, fail: true}
	resolve := func(id int) (AccessInfo, bool) { return AccessInfo{Length: 60, WriterSlot: -1}, true }
	a, err := NewAgent(0, []core.Entry{mkEntry(1, 0, 9)}, resolve, f, buf, &fakeClock{min: 100})
	if err != nil {
		t.Fatal(err)
	}
	a.AdvanceTo(1, eng.Now())
	if buf.Used() != 0 {
		t.Fatalf("reservation leaked: Used = %d", buf.Used())
	}
}

func TestNewAgentNilDeps(t *testing.T) {
	if _, err := NewAgent(0, nil, nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestBypassThenLateCommitReleasesSpace(t *testing.T) {
	eng := sim.NewEngine(1)
	buf := MustNewGlobalBuffer(100)
	infos := map[int]AccessInfo{1: {Length: 60, WriterSlot: -1}}
	a, _ := mkAgent(t, eng, []core.Entry{mkEntry(1, 0, 9)}, infos, buf, &fakeClock{min: 100})
	a.AdvanceTo(0, eng.Now())
	// Application bypasses while the fetch is in flight.
	if buf.TryConsume(1) {
		t.Fatal("in-flight entry consumed")
	}
	eng.Run() // fetch completes, Commit finds nothing
	if buf.Used() != 0 {
		t.Fatalf("space leaked after bypass: %d", buf.Used())
	}
	// Buffer is fully reusable.
	if !buf.Reserve(2, 100) {
		t.Fatal("full capacity not reusable")
	}
}
