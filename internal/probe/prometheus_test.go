package probe

import (
	"math"
	"strings"
	"testing"
)

// TestPrometheusNilAndEmpty: a nil registry writes nothing and returns no
// error; an empty registry writes nothing either.
func TestPrometheusNilAndEmpty(t *testing.T) {
	var b strings.Builder
	var r *Registry
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatalf("empty registry: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("empty registry wrote %q", b.String())
	}
}

// TestPrometheusNaNInf: NaN and ±Inf gauge values render in the exposition
// format's spellings (NaN, +Inf, -Inf), not as parse errors.
func TestPrometheusNaNInf(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g.nan").Set(math.NaN())
	r.Gauge("g.posinf").Set(math.Inf(1))
	r.Gauge("g.neginf").Set(math.Inf(-1))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"g_nan NaN\n", "g_posinf +Inf\n", "g_neginf -Inf\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPromNameEscaping: metric names are collapsed to the Prometheus
// charset without leading/trailing separators or digit-leading names.
func TestPromNameEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"disk.spin_ups", "disk_spin_ups"},
		{"sweep/runs", "sweep_runs"},
		{"a..b", "a_b"},
		{".leading", "leading"},
		{"trailing.", "trailing"},
		{"", "metric"},
		{"---", "metric"},
		{"0count", "_0count"},
		{"ns:sub.metric", "ns:sub_metric"},
		{"héllo wörld", "h_llo_w_rld"},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPrometheusHistogram: fixed-bucket histograms render as cumulative
// _bucket series with _sum/_count, sorted in with the scalar metrics.
func TestPrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("run.latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	r.Counter("aaa").Add(2) // sorts before the histogram block
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		"# TYPE aaa counter",
		"aaa 2",
		"# TYPE run_latency_seconds histogram",
		`run_latency_seconds_bucket{le="0.1"} 1`,
		`run_latency_seconds_bucket{le="1"} 3`,
		`run_latency_seconds_bucket{le="10"} 4`,
		`run_latency_seconds_bucket{le="+Inf"} 5`,
		"run_latency_seconds_sum 106.25",
		"run_latency_seconds_count 5",
	}
	got := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(wantLines), out)
	}
	for i, w := range wantLines {
		if got[i] != w {
			t.Errorf("line %d = %q, want %q", i, got[i], w)
		}
	}
}

// TestHistogramHandleSemantics: re-registration returns the same
// histogram, zero-value handles are inert, and snapshots are sorted.
func TestHistogramHandleSemantics(t *testing.T) {
	var zero Histogram
	zero.Observe(1) // must not panic

	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1})
	h2 := r.Histogram("h", []float64{5, 10}) // bounds ignored on re-register
	h1.Observe(0.5)
	h2.Observe(0.5)
	r.Histogram("a", []float64{1})
	hs := r.Histograms()
	if len(hs) != 2 || hs[0].Name != "a" || hs[1].Name != "h" {
		t.Fatalf("Histograms() = %+v, want sorted [a h]", hs)
	}
	if hs[1].Count != 2 || hs[1].Counts[0] != 2 {
		t.Errorf("shared histogram state = %+v, want both observations in one", hs[1])
	}
	if len(hs[1].Bounds) != 1 {
		t.Errorf("re-register changed bounds: %v", hs[1].Bounds)
	}

	var nilReg *Registry
	if h := nilReg.Histogram("x", nil); h.r != nil {
		t.Error("nil registry returned a live histogram")
	}
	if got := nilReg.Histograms(); got != nil {
		t.Errorf("nil registry Histograms() = %v", got)
	}
}
