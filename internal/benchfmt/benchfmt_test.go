package benchfmt

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, vals, ok := ParseLine("BenchmarkFig12c-8  1  903406958 ns/op  414148576 B/op  4298756 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "BenchmarkFig12c" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped?)", name)
	}
	want := map[string]float64{"iterations": 1, "ns/op": 903406958, "B/op": 414148576, "allocs/op": 4298756}
	for k, v := range want {
		if vals[k] != v {
			t.Errorf("%s = %g, want %g", k, vals[k], v)
		}
	}
	for _, bad := range []string{
		"PASS",
		"ok  	sdds	1.2s",
		"BenchmarkX only three",
		"BenchmarkX-8 notanumber 3.4 ns/op",
	} {
		if _, _, ok := ParseLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseStreamAndRoundTrip(t *testing.T) {
	stream := `goos: linux
BenchmarkA-8   100   12.5 ns/op   3 allocs/op
some test log line
BenchmarkB   2   1000 ns/op   4.5 virtual_J
PASS
`
	res, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(res))
	}
	out, err := MarshalSorted(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBaseline(out)
	if err != nil {
		t.Fatal(err)
	}
	if back["BenchmarkA"]["allocs/op"] != 3 || back["BenchmarkB"]["virtual_J"] != 4.5 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	// Deterministic bytes.
	out2, _ := MarshalSorted(res)
	if string(out) != string(out2) {
		t.Fatal("MarshalSorted not deterministic")
	}
}
