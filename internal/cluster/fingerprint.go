package cluster

import (
	"fmt"
	"strconv"

	"sdds/internal/power"
)

// Fingerprint flattens a Result into an ordered, exact string form: the
// bit-identity contract behind testdata/golden.json. Floats are rendered
// as hex (%x) so the comparison is bit-exact, not round-trip-formatted.
// The golden tests in this package and the harness's capture-neutrality
// test share this one definition — any observability layer (probes,
// diagnostics capture, logging) must leave it unchanged.
//
// Deliberately excluded: Metrics (the registry snapshot may grow
// observability-only entries), Compile/CompileProvenance (execution
// provenance, not simulation output), and Faults (absent from the
// fault-free golden matrix).
func Fingerprint(res *Result) []string {
	hex := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
	fp := []string{
		"exec=" + strconv.FormatInt(int64(res.ExecTime), 10),
		"energy=" + hex(res.EnergyJ),
		"bufhits=" + strconv.FormatInt(res.BufferHits, 10),
		"bufmiss=" + strconv.FormatInt(res.BufferMisses, 10),
		"prefetch=" + strconv.FormatInt(res.PrefetchIssued, 10),
		"schits=" + strconv.FormatInt(res.StorageCacheHits, 10),
		"scmiss=" + strconv.FormatInt(res.StorageCacheMisses, 10),
		"agmoved=" + strconv.FormatInt(res.AgentMoved, 10),
		"agissued=" + strconv.FormatInt(res.AgentIssued, 10),
		"agblocked=" + strconv.FormatInt(res.AgentBlocked, 10),
		"agdeferred=" + strconv.FormatInt(res.AgentDeferred, 10),
		"diskreq=" + strconv.FormatInt(res.DiskRequests, 10),
		"spinups=" + strconv.FormatInt(res.SpinUps, 10),
		"rpmshifts=" + strconv.FormatInt(res.RPMShifts, 10),
		"idlecount=" + strconv.FormatInt(res.Idle.Count(), 10),
		"idlemax=" + strconv.FormatInt(int64(res.Idle.Max()), 10),
		"idlemean=" + strconv.FormatInt(int64(res.Idle.Mean()), 10),
	}
	for i, j := range res.NodeEnergyJ {
		fp = append(fp, fmt.Sprintf("node%d=%s", i, hex(j)))
	}
	return fp
}

// FingerprintKey renders a golden-matrix configuration's key as stored in
// testdata/golden.json.
func FingerprintKey(app string, kind power.Kind, scheduling bool) string {
	return fmt.Sprintf("%s/%s/sched=%v", app, kind, scheduling)
}
