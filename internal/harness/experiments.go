package harness

import (
	"fmt"
	"time"

	"sdds/internal/cluster"
	"sdds/internal/compiler"
	"sdds/internal/core"
	"sdds/internal/disk"
	"sdds/internal/metrics"
	"sdds/internal/power"
	"sdds/internal/sim"
	"sdds/internal/stripe"
	"sdds/internal/workloads"
)

// Table2 dumps the default configuration, mirroring Table II.
func Table2(c Config) (*Result, error) {
	cfg := cluster.DefaultConfig()
	p := cfg.Node.DiskParams
	rows := [][]string{
		{"Number of Client (Compute) Nodes", fmt.Sprintf("%d", cfg.Procs)},
		{"Number of I/O nodes", fmt.Sprintf("%d", cfg.Layout.NumNodes)},
		{"Stripe Size", fmt.Sprintf("%dKB", cfg.Layout.StripeSize>>10)},
		{"RAID Level", cfg.Node.Level.String()},
		{"Disks per I/O node", fmt.Sprintf("%d", cfg.Node.Members)},
		{"Individual Disk Capacity", fmt.Sprintf("%.0fGB", p.CapacityGB)},
		{"Storage Cache Capacity", fmt.Sprintf("%dMB (per I/O node)", cfg.Node.CacheBytes>>20)},
		{"Maximum Disk Rotation Speed", fmt.Sprintf("%d RPM", p.MaxRPM)},
		{"Idle Power", fmt.Sprintf("%.1fW (at %d RPM)", p.IdlePowerW, p.MaxRPM)},
		{"Active (R/W) Power", fmt.Sprintf("%.1fW (at %d RPM)", p.ActivePowerW, p.MaxRPM)},
		{"Seek Power", fmt.Sprintf("%.1fW (at %d RPM)", p.SeekPowerW, p.MaxRPM)},
		{"Standby Power", fmt.Sprintf("%.1fW", p.StandbyPowerW)},
		{"Spin-up Power", fmt.Sprintf("%.1fW", p.SpinUpPowerW)},
		{"Spin-up Time", fmt.Sprintf("%.0fsecs", p.SpinUpTime.Seconds())},
		{"Spin-down Time", fmt.Sprintf("%.0fsecs", p.SpinDownTime.Seconds())},
		{"Disk-Arm Scheduling", "Elevator"},
		{"Minimum Disk Rotation Speed", fmt.Sprintf("%d RPM", p.MinRPM)},
		{"RPM Step-Size", fmt.Sprintf("%d", p.RPMStep)},
		{"delta", fmt.Sprintf("%d iterations (slots)", cfg.Compiler.Delta)},
		{"theta", fmt.Sprintf("%d", cfg.Compiler.Theta)},
	}
	return &Result{ID: "table2", Title: "Main experimental parameters",
		Headers: []string{"Parameter", "Value"}, Rows: rows}, nil
}

// Table3 reports per-application execution time and disk energy under the
// Default Scheme (no power management) — the baseline every other number is
// normalized against.
func Table3(c Config) (*Result, error) {
	c = c.withDefaults()
	base, err := runBaselines(c)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, _ := workloads.ByName(app)
		res := base.byApp[app]
		rows = append(rows, []string{
			app, spec.Description,
			fmt.Sprintf("%.1f", res.ExecTime.Seconds()/60),
			fmt.Sprintf("%.1f", res.EnergyJ),
		})
	}
	return &Result{ID: "table3", Title: "Application programs",
		Headers: []string{"Name", "Brief Description", "Exec Time (minutes)", "Disk Energy (Joule)"},
		Rows:    rows}, nil
}

// cdfResult renders per-app idle CDFs at the paper's bucket bounds.
func cdfResult(id, title string, c Config, scheduling bool) (*Result, error) {
	c = c.withDefaults()
	headers := []string{"Idleness (msec)"}
	headers = append(headers, c.Apps...)
	hists := make([]*metrics.IdleHistogram, len(c.Apps))
	for i, app := range c.Apps {
		res, err := runOne(c, app, power.KindDefault, scheduling)
		if err != nil {
			return nil, err
		}
		hists[i] = res.Idle
	}
	var rows [][]string
	for bi, bound := range metrics.PaperBucketsMs {
		row := []string{fmt.Sprintf("%.0f", bound)}
		for _, h := range hists {
			row = append(row, metrics.Pct(h.CDF()[bi].Frac))
		}
		rows = append(rows, row)
	}
	var mean100, mean5000 float64
	for _, h := range hists {
		mean100 += h.FracAtMost(100)
		mean5000 += h.FracAtMost(5000)
	}
	notes := []string{fmt.Sprintf("average: %s of idle periods ≤100ms, %s ≤5s (paper without scheme: 86.4%% and 96.5%%)",
		metrics.Pct(mean100/float64(len(hists))), metrics.Pct(mean5000/float64(len(hists))))}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows, Notes: notes}, nil
}

// Fig12a is the idle-period CDF without the scheme.
func Fig12a(c Config) (*Result, error) {
	return cdfResult("fig12a", "CDF of idle periods without the scheme", c, false)
}

// Fig12b is the idle-period CDF with the scheme.
func Fig12b(c Config) (*Result, error) {
	return cdfResult("fig12b", "CDF of idle periods with the scheme", c, true)
}

// energyResult renders normalized energy per app × policy.
func energyResult(id, title string, c Config, scheduling bool) (*Result, error) {
	c = c.withDefaults()
	base, err := runBaselines(c)
	if err != nil {
		return nil, err
	}
	kinds := power.ManagedKinds()
	headers := []string{"App"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	rows := make([][]string, 0, len(c.Apps))
	avg := make([]float64, len(kinds))
	values := make([][]float64, 0, len(c.Apps))
	for _, app := range c.Apps {
		row := []string{app}
		vals := make([]float64, 0, len(kinds))
		for ki, k := range kinds {
			res, err := runOne(c, app, k, scheduling)
			if err != nil {
				return nil, err
			}
			norm := metrics.NormalizedEnergy(res.EnergyJ, base.byApp[app].EnergyJ)
			avg[ki] += 1 - norm
			row = append(row, metrics.Pct(norm))
			vals = append(vals, norm)
		}
		rows = append(rows, row)
		values = append(values, vals)
	}
	series := make([]string, len(kinds))
	for ki, k := range kinds {
		series[ki] = k.String()
	}
	chart := &metrics.BarChart{Title: title, Groups: c.Apps, Series: series, Values: values}
	note := "average savings:"
	for ki, k := range kinds {
		note += fmt.Sprintf(" %s %s", k, metrics.Pct(avg[ki]/float64(len(c.Apps))))
	}
	paper := "paper without scheme: simple 4.7%, prediction 6.3%, history 15.6%, staggered 9.8%"
	if scheduling {
		paper = "paper with scheme: simple 9.4%, prediction 14.2%, history 29.2%, staggered 25.9%"
	}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows,
		Notes: []string{note, paper}, Chart: chart}, nil
}

// Fig12c is normalized energy per policy without the scheme.
func Fig12c(c Config) (*Result, error) {
	return energyResult("fig12c", "Normalized energy consumption without the scheme", c, false)
}

// Fig12d is normalized energy per policy with the scheme.
func Fig12d(c Config) (*Result, error) {
	return energyResult("fig12d", "Normalized energy consumption with the scheme", c, true)
}

// degradationResult renders performance degradation per app × policy.
func degradationResult(id, title string, c Config, scheduling bool) (*Result, error) {
	c = c.withDefaults()
	base, err := runBaselines(c)
	if err != nil {
		return nil, err
	}
	kinds := power.ManagedKinds()
	headers := []string{"App"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	rows := make([][]string, 0, len(c.Apps))
	avg := make([]float64, len(kinds))
	for _, app := range c.Apps {
		row := []string{app}
		for ki, k := range kinds {
			res, err := runOne(c, app, k, scheduling)
			if err != nil {
				return nil, err
			}
			d := metrics.Degradation(res.ExecTime, base.byApp[app].ExecTime)
			avg[ki] += d
			row = append(row, metrics.Pct(d))
		}
		rows = append(rows, row)
	}
	note := "average degradation:"
	for ki, k := range kinds {
		note += fmt.Sprintf(" %s %s", k, metrics.Pct(avg[ki]/float64(len(c.Apps))))
	}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows, Notes: []string{note}}, nil
}

// Fig13a is performance degradation without the scheme.
func Fig13a(c Config) (*Result, error) {
	return degradationResult("fig13a", "Performance degradation without the scheme", c, false)
}

// Fig13b is performance degradation with the scheme.
func Fig13b(c Config) (*Result, error) {
	return degradationResult("fig13b", "Performance degradation with the scheme", c, true)
}

// extraSavings computes the additional energy reduction the scheme brings
// over the history-based policy alone, for one app under a modified
// cluster config.
func extraSavings(c Config, app string, mutate func(*cluster.Config)) (float64, error) {
	spec, err := workloads.ByName(app)
	if err != nil {
		return 0, err
	}
	run := func(scheduling bool) (*cluster.Result, error) {
		prog := spec.Build(c.Scale)
		cfg := cluster.DefaultConfig()
		cfg.Seed = c.Seed
		cfg.Policy = power.Config{Kind: power.KindHistory}
		cfg.Scheduling = scheduling
		if mutate != nil {
			mutate(&cfg)
		}
		return cluster.Run(prog, cfg)
	}
	without, err := run(false)
	if err != nil {
		return 0, err
	}
	with, err := run(true)
	if err != nil {
		return 0, err
	}
	return metrics.EnergySaving(with.EnergyJ, without.EnergyJ), nil
}

// sweepResult renders the extra savings of the scheme (over history-based)
// across a parameter sweep, averaged over the configured apps.
func sweepResult(id, title, param string, values []string, c Config, mutate func(*cluster.Config, int)) (*Result, error) {
	c = c.withDefaults()
	headers := append([]string{"App"}, values...)
	rows := make([][]string, 0, len(c.Apps))
	avg := make([]float64, len(values))
	for _, app := range c.Apps {
		row := []string{app}
		for vi := range values {
			vi := vi
			s, err := extraSavings(c, app, func(cfg *cluster.Config) { mutate(cfg, vi) })
			if err != nil {
				return nil, err
			}
			avg[vi] += s
			row = append(row, metrics.Pct(s))
		}
		rows = append(rows, row)
	}
	note := fmt.Sprintf("average extra reduction by %s:", param)
	for vi, v := range values {
		note += fmt.Sprintf(" %s=%s %s", param, v, metrics.Pct(avg[vi]/float64(len(c.Apps))))
	}
	return &Result{ID: id, Title: title, Headers: headers, Rows: rows, Notes: []string{note}}, nil
}

// Fig13c sweeps the number of I/O nodes.
func Fig13c(c Config) (*Result, error) {
	nodes := []int{2, 4, 8, 16, 32}
	values := make([]string, len(nodes))
	for i, n := range nodes {
		values[i] = fmt.Sprintf("%d", n)
	}
	return sweepResult("fig13c", "Energy reduction as the number of I/O nodes varies", "nodes", values, c,
		func(cfg *cluster.Config, vi int) {
			cfg.Layout = stripe.Layout{NumNodes: nodes[vi], StripeSize: cfg.Layout.StripeSize}
			cfg.Net.NumNodes = nodes[vi]
		})
}

// Fig13d sweeps the vertical reuse range δ.
func Fig13d(c Config) (*Result, error) {
	deltas := []int{5, 10, 20, 40, 80}
	values := make([]string, len(deltas))
	for i, d := range deltas {
		values[i] = fmt.Sprintf("%d", d)
	}
	return sweepResult("fig13d", "Energy reduction as the value of delta varies", "delta", values, c,
		func(cfg *cluster.Config, vi int) { cfg.Compiler.Delta = deltas[vi] })
}

// Fig14a sweeps θ for energy.
func Fig14a(c Config) (*Result, error) {
	thetas := []int{2, 4, 6, 8}
	values := make([]string, len(thetas))
	for i, th := range thetas {
		values[i] = fmt.Sprintf("%d", th)
	}
	return sweepResult("fig14a", "Energy reduction as the value of theta varies", "theta", values, c,
		func(cfg *cluster.Config, vi int) { cfg.Compiler.Theta = thetas[vi] })
}

// Fig14b sweeps θ for performance improvement of raising θ relative to the
// most constrained setting (θ=2), with the scheme on.
func Fig14b(c Config) (*Result, error) {
	c = c.withDefaults()
	thetas := []int{2, 4, 6, 8}
	headers := []string{"App"}
	for _, th := range thetas {
		headers = append(headers, fmt.Sprintf("%d", th))
	}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, err := workloads.ByName(app)
		if err != nil {
			return nil, err
		}
		times := make([]float64, len(thetas))
		for ti, th := range thetas {
			prog := spec.Build(c.Scale)
			cfg := cluster.DefaultConfig()
			cfg.Seed = c.Seed
			cfg.Policy = power.Config{Kind: power.KindHistory}
			cfg.Scheduling = true
			cfg.Compiler.Theta = th
			res, err := cluster.Run(prog, cfg)
			if err != nil {
				return nil, err
			}
			times[ti] = res.ExecTime.Seconds()
		}
		row := []string{app}
		for _, t := range times {
			row = append(row, metrics.Pct((times[0]-t)/times[0]))
		}
		rows = append(rows, row)
	}
	return &Result{ID: "fig14b", Title: "Performance improvement as theta varies (vs theta=2)",
		Headers: headers, Rows: rows}, nil
}

// CacheSens varies the per-node storage-cache capacity (§V-D: 32 MB raises
// the scheme's relative benefit, 256 MB lowers it).
func CacheSens(c Config) (*Result, error) {
	caps := []int64{32 << 20, 64 << 20, 256 << 20}
	values := []string{"32MB", "64MB", "256MB"}
	return sweepResult("cachesens", "Extra energy reduction vs storage-cache capacity", "cache", values, c,
		func(cfg *cluster.Config, vi int) { cfg.Node.CacheBytes = caps[vi] })
}

// CompileCost measures the wall-clock cost of the compiler pass per app
// (the paper reports ~1.4 s worst case, ~40% over the baseline compile).
func CompileCost(c Config) (*Result, error) {
	c = c.withDefaults()
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, err := workloads.ByName(app)
		if err != nil {
			return nil, err
		}
		prog := spec.Build(c.Scale)
		start := time.Now()
		res, err := compiler.Compile(prog, compiler.DefaultOptions(32))
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%d", len(res.Accesses)),
			fmt.Sprintf("%d", res.Program.Slots(32)),
			fmt.Sprintf("%.3fs", wall.Seconds()),
			fmt.Sprintf("%v", res.UsedProfiler),
		})
	}
	return &Result{ID: "compile", Title: "Scheduling pass cost",
		Headers: []string{"App", "Accesses", "Slots", "Wall time", "Profiler"},
		Rows:    rows}, nil
}

// Ablations quantifies the design choices of §IV-B on the scheduling
// algorithm itself (no cluster simulation): processing order, σ weights,
// and the vertical reuse range, measured by packed node-slot activations
// (lower = tighter grouping).
func Ablations(c Config) (*Result, error) {
	c = c.withDefaults()
	type variant struct {
		name   string
		mutate func(*compiler.Options)
	}
	variants := []variant{
		{"paper (slack order, weights, delta=20)", nil},
		{"input order", func(o *compiler.Options) { o.Order = core.OrderInput }},
		{"longest-slack first", func(o *compiler.Options) { o.Order = core.OrderLongestSlack }},
		{"no position weights", func(o *compiler.Options) { o.NoWeights = true }},
		{"delta=0 (horizontal only)", func(o *compiler.Options) { o.Delta = 0 }},
		{"coalesced d=8 (Sec. IV-A)", func(o *compiler.Options) { o.CoalesceD = 8 }},
	}
	headers := []string{"Variant"}
	headers = append(headers, c.Apps...)
	rows := make([][]string, 0, len(variants))
	for _, v := range variants {
		row := []string{v.name}
		for _, app := range c.Apps {
			spec, err := workloads.ByName(app)
			if err != nil {
				return nil, err
			}
			prog := spec.Build(c.Scale)
			opts := compiler.DefaultOptions(32)
			if v.mutate != nil {
				v.mutate(&opts)
			}
			res, err := compiler.Compile(prog, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.Schedule.NodeActivations()))
		}
		rows = append(rows, row)
	}
	return &Result{ID: "ablations", Title: "Scheduler design ablations (node-slot activations; lower = tighter grouping)",
		Headers: headers, Rows: rows}, nil
}

// Oracle compares the history-based policy against an oracle multi-speed
// policy fed the true idle lengths recorded in a first pass — an upper
// bound on what better prediction could buy (ablation beyond the paper).
func Oracle(c Config) (*Result, error) {
	c = c.withDefaults()
	headers := []string{"App", "default (J)", "history (J)", "oracle (J)", "history saving", "oracle saving"}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, err := workloads.ByName(app)
		if err != nil {
			return nil, err
		}
		// Pass 1: Default Scheme, recording the gap trace.
		var trace *metrics.GapTrace
		cfg := cluster.DefaultConfig()
		cfg.Seed = c.Seed
		var eng0 *sim.Engine // captured by the factory below
		cfg.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
			if trace == nil {
				eng0 = eng
				trace = metrics.NewGapTrace(func() sim.Time { return eng0.Now() })
			}
			return power.New(eng, power.Config{Kind: power.KindDefault})
		}
		cfg.ExtraIdleRecorder = traceHolder{&trace}
		base, err := cluster.Run(spec.Build(c.Scale), cfg)
		if err != nil {
			return nil, err
		}
		// Pass 2a: history.
		cfgH := cluster.DefaultConfig()
		cfgH.Seed = c.Seed
		cfgH.Policy = power.Config{Kind: power.KindHistory}
		hist, err := cluster.Run(spec.Build(c.Scale), cfgH)
		if err != nil {
			return nil, err
		}
		// Pass 2b: oracle replaying the recorded gaps.
		cfgO := cluster.DefaultConfig()
		cfgO.Seed = c.Seed
		cfgO.PolicyFactory = func(eng *sim.Engine) (power.Policy, error) {
			return power.NewOracle(eng, power.Config{}, trace), nil
		}
		orc, err := cluster.Run(spec.Build(c.Scale), cfgO)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%.0f", base.EnergyJ),
			fmt.Sprintf("%.0f", hist.EnergyJ),
			fmt.Sprintf("%.0f", orc.EnergyJ),
			metrics.Pct(metrics.EnergySaving(hist.EnergyJ, base.EnergyJ)),
			metrics.Pct(metrics.EnergySaving(orc.EnergyJ, base.EnergyJ)),
		})
	}
	return &Result{ID: "oracle", Title: "Oracle prediction upper bound (ablation)",
		Headers: headers, Rows: rows}, nil
}

// traceHolder defers recorder resolution until the trace exists (the
// factory creates it on first use).
type traceHolder struct{ t **metrics.GapTrace }

func (h traceHolder) RecordIdle(d *disk.Disk, gap sim.Duration) {
	if *h.t != nil {
		(*h.t).RecordIdle(d, gap)
	}
}

// PALRUCache compares the plain LRU storage cache against the power-aware
// PA-LRU variant (eviction avoids blocks whose disk sleeps) under the
// simple spin-down policy — the related-work direction (§VI) implemented
// as an extension.
func PALRUCache(c Config) (*Result, error) {
	c = c.withDefaults()
	headers := []string{"App", "LRU (J)", "PA-LRU (J)", "delta"}
	rows := make([][]string, 0, len(c.Apps))
	for _, app := range c.Apps {
		spec, err := workloads.ByName(app)
		if err != nil {
			return nil, err
		}
		run := func(powerAware bool) (*cluster.Result, error) {
			cfg := cluster.DefaultConfig()
			cfg.Seed = c.Seed
			cfg.Policy = power.Config{Kind: power.KindSimple}
			cfg.Node.PowerAwareCache = powerAware
			return cluster.Run(spec.Build(c.Scale), cfg)
		}
		lru, err := run(false)
		if err != nil {
			return nil, err
		}
		pal, err := run(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%.0f", lru.EnergyJ),
			fmt.Sprintf("%.0f", pal.EnergyJ),
			metrics.Pct(metrics.EnergySaving(pal.EnergyJ, lru.EnergyJ)),
		})
	}
	return &Result{ID: "palru", Title: "Power-aware storage-cache replacement (extension)",
		Headers: headers, Rows: rows}, nil
}
