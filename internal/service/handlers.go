package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"sdds/internal/compilecache"
	"sdds/internal/diag"
	"sdds/internal/harness"
	"sdds/internal/shard"
	"sdds/internal/store"
	"sdds/internal/workloads"
)

// maxBodyBytes bounds request bodies; the largest legitimate sweep is a
// few thousand requests, well under this.
const maxBodyBytes = 8 << 20

// RunResponse is the wire form of one resolved run: the canonical
// request, its content key, whether it was served from cache (memory or
// the persistent store), and the result or the error.
type RunResponse struct {
	Key       string             `json:"key"`
	Request   harness.Request    `json:"request"`
	Cached    bool               `json:"cached"`
	ElapsedMS int64              `json:"elapsed_ms"`
	Result    *harness.RunRecord `json:"result,omitempty"`
	Error     string             `json:"error,omitempty"`
}

// SweepRequest describes a batch: the cross product of the listed
// dimensions (each defaulting to one canonical value — all six apps, the
// "default" policy, scheduling off, the unmodified cluster), unioned
// with any explicitly listed requests. Scale, Seed, Faults, and
// TimeoutMS apply to every cross-product cell.
type SweepRequest struct {
	Apps       []string          `json:"apps,omitempty"`
	Policies   []string          `json:"policies,omitempty"`
	Scheduling []bool            `json:"scheduling,omitempty"`
	Variants   []string          `json:"variants,omitempty"`
	Scale      float64           `json:"scale,omitempty"`
	Seed       int64             `json:"seed,omitempty"`
	Faults     string            `json:"faults,omitempty"`
	TimeoutMS  int64             `json:"timeout_ms,omitempty"`
	Requests   []harness.Request `json:"requests,omitempty"`
}

// expand renders the sweep as normalized requests, deduplicated by
// content key (first occurrence wins), in submission order.
func (sw SweepRequest) expand() ([]harness.Request, int, error) {
	apps := sw.Apps
	if len(apps) == 0 {
		apps = workloads.Names()
	}
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{"default"}
	}
	scheduling := sw.Scheduling
	if len(scheduling) == 0 {
		scheduling = []bool{false}
	}
	variants := sw.Variants
	if len(variants) == 0 {
		variants = []string{""}
	}
	var raw []harness.Request
	for _, app := range apps {
		for _, pol := range policies {
			for _, sched := range scheduling {
				for _, v := range variants {
					raw = append(raw, harness.Request{
						App: app, Policy: pol, Scheduling: sched, Variant: v,
						Scale: sw.Scale, Seed: sw.Seed, Faults: sw.Faults, TimeoutMS: sw.TimeoutMS,
					})
				}
			}
		}
	}
	raw = append(raw, sw.Requests...)
	seen := make(map[string]bool)
	out := make([]harness.Request, 0, len(raw))
	for i, r := range raw {
		norm, err := r.Normalize()
		if err != nil {
			return nil, 0, fmt.Errorf("request %d (%s): %w", i, r.App, err)
		}
		key := norm.ContentKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, norm)
	}
	return out, len(raw), nil
}

// SweepResponse summarizes a resolved sweep.
type SweepResponse struct {
	// Total counts expanded submissions; Distinct the deduplicated runs.
	Total    int `json:"total"`
	Distinct int `json:"distinct"`
	// Cached/Simulated/Failed partition the distinct runs.
	Cached    int           `json:"cached"`
	Simulated int           `json:"simulated"`
	Failed    int           `json:"failed"`
	Runs      []RunResponse `json:"runs"`
}

// StatusResponse is the health surface behind GET /v1/status.
type StatusResponse struct {
	UptimeMS     int64    `json:"uptime_ms"`
	Workers      int      `json:"workers"`
	InFlight     int      `json:"inflight"`
	InFlightKeys []string `json:"inflight_keys,omitempty"`
	CacheEntries int      `json:"cache_entries"`
	Preloaded    int      `json:"preloaded"`
	Simulated    int64    `json:"simulated"`
	CacheHits    int64    `json:"cache_hits"`
	StoreEntries int      `json:"store_entries"`
	StoreAppends int64    `json:"store_appends"`
	StorePath    string   `json:"store_path"`
	Subscribers  int      `json:"subscribers"`
	// SetupGroups counts the distinct (app, scale, procs) pre-simulation
	// snapshots the session has built for sweep forking.
	SetupGroups int `json:"setup_groups"`
	// CompileCache reports the compile-artifact cache counters; absent
	// when the cache is disabled.
	CompileCache *compilecache.Stats `json:"compile_cache,omitempty"`
	// ArtifactPath is the persistent compile-artifact store; empty when
	// the cache is disabled.
	ArtifactPath string `json:"artifact_path,omitempty"`
	// Shards reports the active sharded sweep; absent when none was
	// submitted this lifetime.
	Shards *shard.Snapshot `json:"shards,omitempty"`
}

// Check is one doctor diagnostic: status is "ok", "warn", or "fail".
type Check struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Detail string `json:"detail"`
}

// TailRun is one recent store entry in the doctor report.
type TailRun struct {
	Key     string          `json:"key"`
	Request harness.Request `json:"request"`
}

// DoctorResponse is the diagnostic surface behind GET /v1/doctor.
type DoctorResponse struct {
	Status string       `json:"status"`
	Checks []Check      `json:"checks"`
	Store  store.Report `json:"store"`
	Tail   []TailRun    `json:"tail,omitempty"`
	// Bundles lists the most recent diagnostics bundles (newest first);
	// absent when capture is disabled.
	Bundles []BundleSummary `json:"bundles,omitempty"`
	Metrics string          `json:"metrics"`
}

// BundleSummary is one diagnostics bundle in listings: identity and
// trigger context without the per-file manifest detail.
type BundleSummary struct {
	ID            string `json:"id"`
	Trigger       string `json:"trigger"`
	Key           string `json:"key,omitempty"`
	Error         string `json:"error,omitempty"`
	ElapsedMS     int64  `json:"elapsed_ms,omitempty"`
	CreatedUnixMS int64  `json:"created_unix_ms"`
	Files         int    `json:"files"`
	Path          string `json:"path"`
}

func newBundleSummary(b diag.BundleInfo) BundleSummary {
	return BundleSummary{
		ID:            b.ID,
		Trigger:       b.Manifest.Trigger,
		Key:           b.Manifest.Key,
		Error:         b.Manifest.Error,
		ElapsedMS:     b.Manifest.ElapsedMS,
		CreatedUnixMS: b.Manifest.CreatedUnixMS,
		Files:         len(b.Manifest.Files),
		Path:          b.Path,
	}
}

// BundleRequest is the POST /v1/bundles body: the run to capture, named
// either by content key (a run this service has seen or stored) or by a
// full request.
type BundleRequest struct {
	Key     string           `json:"key,omitempty"`
	Request *harness.Request `json:"request,omitempty"`
}

// BundleResponse answers POST /v1/bundles and GET /v1/bundles/{id}.
type BundleResponse struct {
	ID       string        `json:"id"`
	Path     string        `json:"path"`
	Archive  string        `json:"archive,omitempty"`
	Manifest diag.Manifest `json:"manifest"`
}

// Event is one run-progress event on the GET /v1/events SSE stream,
// mirroring harness.Progress.
type Event struct {
	Key       string `json:"key"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Hits      int    `json:"hits"`
	Hit       bool   `json:"hit"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Err       string `json:"err,omitempty"`
	// FromJournal marks a hit served from a result persisted by an
	// earlier process lifetime.
	FromJournal bool `json:"from_journal,omitempty"`
	// CompileProv names where a scheduled run's compile pass came from
	// ("compiled", "memo", "restored", "uncacheable").
	CompileProv string `json:"compile_prov,omitempty"`
	// Shard/ShardEvent/Worker/Attempts describe a shard lifecycle
	// transition ("leased", "completed", "duplicate", "requeued",
	// "poisoned") on a sharded sweep; absent on plain run events.
	Shard      string `json:"shard,omitempty"`
	ShardEvent string `json:"shard_event,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
}

// errorResponse is the uniform JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the /v1 API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/runs/{key}", s.handleGetRun)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/doctor", s.handleDoctor)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/shards/sweeps", s.handleSubmitShards)
	mux.HandleFunc("POST /v1/shards/lease", s.handleShardLease)
	mux.HandleFunc("POST /v1/shards/renew", s.handleShardRenew)
	mux.HandleFunc("POST /v1/shards/complete", s.handleShardComplete)
	mux.HandleFunc("GET /v1/shards/status", s.handleShardStatus)
	mux.HandleFunc("POST /v1/bundles", s.handleCaptureBundle)
	mux.HandleFunc("GET /v1/bundles", s.handleListBundles)
	mux.HandleFunc("GET /v1/bundles/{id}", s.handleGetBundle)
	return mux
}

// writeJSON renders v with status; encode errors past the header are
// unrecoverable mid-stream and ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// decodeJSON strictly decodes the request body into v: unknown fields
// are rejected (a misspelled field must not silently become a default).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// handleRun resolves POST /v1/runs: one canonical request, answered
// synchronously (from cache, the persistent store, or a fresh
// simulation under the worker pool).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req harness.Request
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp := s.runOne(r.Context(), norm)
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

// handleSweep resolves POST /v1/sweeps: expand, validate everything
// before simulating anything, dedup against the store and cache, then
// fan the distinct runs out over the worker pool.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sw SweepRequest
	if err := decodeJSON(r, &sw); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	reqs, total, err := sw.expand()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.regMu.Lock()
	s.sweeps.Inc()
	s.regMu.Unlock()

	resp := SweepResponse{Total: total, Distinct: len(reqs), Runs: make([]RunResponse, len(reqs))}
	// One goroutine per distinct run, gated by the service worker bound;
	// the session's own pool bounds actual simulations, so this gate only
	// caps handler-side goroutines.
	sem := make(chan struct{}, s.opts.Workers)
	var wg sync.WaitGroup
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq harness.Request) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp.Runs[i] = s.runOne(r.Context(), rq)
		}(i, rq)
	}
	wg.Wait()
	for _, run := range resp.Runs {
		switch {
		case run.Error != "":
			resp.Failed++
		case run.Cached:
			resp.Cached++
		default:
			resp.Simulated++
		}
	}
	status := http.StatusOK
	if resp.Failed > 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

// handleGetRun resolves GET /v1/runs/{key}: 202 while the key is being
// simulated, 200 with the stored result once resolved (this process or
// any earlier one), 404 for an unknown key.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	req, known := s.seen[key]
	running := s.inflight[key] > 0
	s.mu.Unlock()
	if running {
		writeJSON(w, http.StatusAccepted, RunResponse{Key: key, Request: req})
		return
	}
	if known {
		if res, rerr, ok := s.sess.Cached(req); ok {
			resp := RunResponse{Key: key, Request: req, Cached: true}
			if rerr != nil {
				resp.Error = rerr.Error()
			} else {
				rec := harness.NewRunRecord(res)
				resp.Result = &rec
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	// Not resolved in this process: the persistent store still answers for
	// runs recorded by earlier lifetimes.
	sreq, res, ok, err := s.journal.Lookup(key)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown run key " + key})
		return
	}
	rec := harness.NewRunRecord(res)
	writeJSON(w, http.StatusOK, RunResponse{Key: key, Request: sreq, Cached: true, Result: &rec})
}

// handleEvents serves the SSE progress stream: one "data:" line per run
// event, until the client disconnects or the service shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	ch, cancel := s.hub.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.hub.done:
			return
		case msg := <-ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", msg); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Server) handleDoctor(w http.ResponseWriter, r *http.Request) {
	d := s.Doctor()
	status := http.StatusOK
	if d.Status == "fail" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, d)
}

// handleMetrics serves the service registry in Prometheus text form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metricsText())
}

// handleCaptureBundle resolves POST /v1/bundles: a manual diagnostics
// capture of one run, named by content key or full request. 503 when the
// service runs without a capture directory, 404 for an unknown key.
func (s *Server) handleCaptureBundle(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "diagnostics capture is disabled (start sddsd with -capture-dir)"})
		return
	}
	var br BundleRequest
	if err := decodeJSON(r, &br); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req harness.Request
	switch {
	case br.Key != "" && br.Request != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give key or request, not both"})
		return
	case br.Key != "":
		s.mu.Lock()
		seen, known := s.seen[br.Key]
		s.mu.Unlock()
		if known {
			req = seen
			break
		}
		sreq, _, found, err := s.journal.Lookup(br.Key)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		if !found {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown run key " + br.Key})
			return
		}
		req = sreq
	case br.Request != nil:
		norm, err := br.Request.Normalize()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		req = norm
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give a run key or a request to capture"})
		return
	}
	info, err := s.CaptureBundle(req)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, BundleResponse{
		ID: info.ID, Path: info.Path, Archive: info.Archive, Manifest: info.Manifest,
	})
}

// handleListBundles serves GET /v1/bundles: every bundle, newest first.
func (s *Server) handleListBundles(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "diagnostics capture is disabled (start sddsd with -capture-dir)"})
		return
	}
	infos, err := s.diag.List()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	out := make([]BundleSummary, 0, len(infos))
	for _, b := range infos {
		out = append(out, newBundleSummary(b))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetBundle serves GET /v1/bundles/{id}: the bundle's manifest, by
// full ID or unique prefix.
func (s *Server) handleGetBundle(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "diagnostics capture is disabled (start sddsd with -capture-dir)"})
		return
	}
	info, err := s.diag.Find(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, BundleResponse{
		ID: info.ID, Path: info.Path, Archive: info.Archive, Manifest: info.Manifest,
	})
}
