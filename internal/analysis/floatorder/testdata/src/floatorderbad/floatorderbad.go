// Package floatorderbad is the floatorder analyzer fixture: map-ordered and
// goroutine-ordered float reductions are flagged; per-key slots, integer
// counters, slice reductions, and ignored lines are not.
package floatorderbad

type stats struct {
	total float64
}

func mapReduce(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation ordered by map iteration`
	}
	return sum
}

func fieldReduce(s *stats, m map[string]float64) {
	for _, v := range m {
		s.total += v // want `float accumulation ordered by map iteration`
	}
}

func perKeyIsFine(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v // per-key slot, each key visited once: order-free
	}
	return out
}

func intCountIsFine(m map[string]float64) int {
	n := 0
	for range m {
		n += 1 // integer accumulation is exact in any order
	}
	return n
}

func sliceReduce(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slice order is deterministic: allowed
	}
	return sum
}

func goReduce(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		x := x
		go func() {
			total += x // want `float accumulation into shared state from a goroutine`
		}()
	}
	return total
}

func ignoredReduce(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //sddsvet:ignore floatorder -- fixture: consumer tolerates last-bit drift
	}
	return sum
}
