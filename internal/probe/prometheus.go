package probe

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): a # TYPE line per metric — counters
// stay counters, high-water gauges become gauges — followed by its value.
// Metric names are sanitized to the Prometheus charset (runs of other
// characters collapse to "_"). Output is sorted by name, so two snapshots
// of equal registries render identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type row struct {
		name  string
		value float64
		gauge bool
	}
	rows := make([]row, 0, len(r.values))
	for i, n := range r.names {
		rows = append(rows, row{name: promName(n), value: r.values[i], gauge: r.isGauge[i]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, rw := range rows {
		typ := "counter"
		if rw.gauge {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", rw.name, typ, rw.name, rw.value); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name ("disk.spinups", "sweep/runs") to
// the Prometheus charset [a-zA-Z0-9_:].
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	pendingSep := false
	for _, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			pendingSep = b.Len() > 0
			continue
		}
		if pendingSep {
			b.WriteByte('_')
			pendingSep = false
		}
		b.WriteRune(c)
	}
	if b.Len() == 0 {
		return "metric"
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}
