package compiler

import (
	"bytes"
	"strings"
	"testing"

	"sdds/internal/loop"
	"sdds/internal/sim"
	"sdds/internal/stripe"
)

func testProgram() *loop.Program {
	return &loop.Program{
		Name:  "t",
		Files: []loop.File{{ID: 0, Name: "a", Size: 1 << 26}, {ID: 1, Name: "b", Size: 1 << 26}},
		Nests: []loop.Nest{
			{Name: "produce", Trips: 32, Parallel: true, IterCost: sim.MilliToTime(2),
				Body: []loop.Stmt{{Kind: loop.StmtWrite, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}}}},
			{Name: "consume", Trips: 32, Parallel: true, IterCost: sim.MilliToTime(2),
				Body: []loop.Stmt{
					{Kind: loop.StmtRead, File: 0, Region: loop.Affine{IterCoef: 64 << 10, Len: 64 << 10}},
					{Kind: loop.StmtRead, File: 1, Region: loop.Affine{IterCoef: 32 << 10, Len: 32 << 10}},
				}},
		},
	}
}

func TestCompileAffinePath(t *testing.T) {
	res, err := Compile(testProgram(), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedProfiler {
		t.Fatal("affine program compiled via profiler")
	}
	if len(res.Accesses) != 64 { // 32 reads of a + 32 of b
		t.Fatalf("accesses = %d, want 64", len(res.Accesses))
	}
	if res.Schedule.Len() != 64 {
		t.Fatalf("scheduled = %d", res.Schedule.Len())
	}
	if _, err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.CompileTime <= 0 {
		t.Fatal("compile time not recorded")
	}
}

func TestCompileProfilerFallback(t *testing.T) {
	p := testProgram()
	p.Nests[1].Body[1].Custom = func(i, proc int) (int64, int64) {
		return int64(i*i) % (1 << 20), 32 << 10
	}
	res, err := Compile(p, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedProfiler {
		t.Fatal("non-affine program did not use profiler")
	}
}

func TestCompileForceProfileAgrees(t *testing.T) {
	p := testProgram()
	a, err := Compile(p, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.ForceProfile = true
	b, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Slacks) != len(b.Slacks) {
		t.Fatalf("slack counts differ: %d vs %d", len(a.Slacks), len(b.Slacks))
	}
	for i := range a.Slacks {
		if a.Slacks[i] != b.Slacks[i] {
			t.Fatalf("slack %d differs between analyzers", i)
		}
	}
}

func TestCompileOptionValidation(t *testing.T) {
	if _, err := Compile(testProgram(), Options{Procs: 0, Layout: stripe.DefaultLayout()}); err == nil {
		t.Fatal("zero procs accepted")
	}
	o := DefaultOptions(4)
	o.SlotBytes = -1
	if _, err := Compile(testProgram(), o); err == nil {
		t.Fatal("negative SlotBytes accepted")
	}
	if _, err := Compile(&loop.Program{}, DefaultOptions(4)); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestAccessLengthsFromSlotBytes(t *testing.T) {
	o := DefaultOptions(4)
	o.SlotBytes = 32 << 10 // 64 KB reads become length 2
	res, err := Compile(testProgram(), o)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int{64 << 10: 2, 32 << 10: 1}
	for i, a := range res.Accesses {
		inst := res.Slacks[i].Inst
		if a.Length != want[inst.Length] {
			t.Fatalf("access %d (bytes %d) length %d, want %d", i, inst.Length, a.Length, want[inst.Length])
		}
	}
}

func TestAccessForRoundTrip(t *testing.T) {
	res, err := Compile(testProgram(), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Slacks {
		id, ok := res.AccessFor(s.Inst)
		if !ok || id != i {
			t.Fatalf("AccessFor(%+v) = %d, %v; want %d", s.Inst, id, ok, i)
		}
		inst, ok := res.InstanceOf(id)
		if !ok || inst != s.Inst {
			t.Fatal("InstanceOf mismatch")
		}
	}
	if _, ok := res.AccessFor(loop.IOInstance{Proc: 99}); ok {
		t.Fatal("phantom instance resolved")
	}
	if res.WriterSlotOf(-1) != -1 || res.WriterSlotOf(1<<20) != -1 {
		t.Fatal("out-of-range WriterSlotOf")
	}
}

func TestSignaturesMatchLayout(t *testing.T) {
	res, err := Compile(testProgram(), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	layout := stripe.DefaultLayout()
	for i, a := range res.Accesses {
		inst := res.Slacks[i].Inst
		want := layout.SignatureFor(inst.Offset, inst.Length)
		if !a.Sig.Equal(want) {
			t.Fatalf("access %d signature %s, want %s", i, a.Sig.String(), want.String())
		}
	}
}

func TestCoalesceDShrinksAndRescales(t *testing.T) {
	p := testProgram()
	base, err := Compile(p, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(4)
	o.CoalesceD = 4
	co, err := Compile(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if co.Schedule.Len() != base.Schedule.Len() {
		t.Fatalf("coalesced schedule lost accesses: %d vs %d", co.Schedule.Len(), base.Schedule.Len())
	}
	// Every point must be valid in the full-resolution slot space.
	if _, err := co.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Points land on unit boundaries (multiples of d) unless clamped into
	// the slack.
	for i := range co.Accesses {
		pt, ok := co.Schedule.PointOf(i)
		if !ok {
			t.Fatalf("access %d unscheduled", i)
		}
		begin, end := co.Slacks[i].Begin, co.Slacks[i].End
		if pt < begin || pt > end {
			t.Fatalf("access %d point %d outside full-res slack [%d,%d]", i, pt, begin, end)
		}
	}
}

func TestCoalesceDValidation(t *testing.T) {
	o := DefaultOptions(4)
	o.CoalesceD = -1
	if _, err := Compile(testProgram(), o); err == nil {
		t.Fatal("negative CoalesceD accepted")
	}
}

func TestTableSerializationRoundTrip(t *testing.T) {
	res, err := Compile(testProgram(), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTables(&buf, 4); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTables(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Program != "t" || tf.Procs != 4 || tf.Delta != 20 || tf.Theta != 4 {
		t.Fatalf("header = %+v", tf)
	}
	if len(tf.Entries) != len(res.Accesses) {
		t.Fatalf("entries = %d, want %d", len(tf.Entries), len(res.Accesses))
	}
	per := tf.PerProcess()
	total := 0
	for proc, entries := range per {
		if proc < 0 || proc >= 4 {
			t.Fatalf("bad proc %d", proc)
		}
		total += len(entries)
	}
	if total != len(tf.Entries) {
		t.Fatal("PerProcess lost entries")
	}
	for _, e := range tf.Entries {
		pt, ok := res.Schedule.PointOf(e.AccessID)
		if !ok || pt != e.Slot {
			t.Fatalf("entry %d slot %d != schedule %d", e.AccessID, e.Slot, pt)
		}
	}
}

func TestReadTablesRejectsGarbage(t *testing.T) {
	if _, err := ReadTables(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadTables(strings.NewReader(`{"program":"x","procs":0,"numSlots":5}`)); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := ReadTables(strings.NewReader(`{"program":"x","procs":2,"numSlots":5,"entries":[{"proc":9,"slot":0,"bytes":1,"length":1}]}`)); err == nil {
		t.Fatal("out-of-range proc accepted")
	}
	if _, err := ReadTables(strings.NewReader(`{"program":"x","procs":2,"numSlots":5,"entries":[{"proc":0,"slot":99,"bytes":1,"length":1}]}`)); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := ReadTables(strings.NewReader(`{"program":"x","procs":2,"numSlots":5,"entries":[{"proc":0,"slot":1,"bytes":0,"length":1}]}`)); err == nil {
		t.Fatal("zero bytes accepted")
	}
}
