package metrics

import (
	"sort"

	"sdds/internal/disk"
	"sdds/internal/sim"
)

// GapTrace records every idle gap of every disk with its start time, so a
// second simulation pass can replay them as perfect predictions (the
// Oracle policy's HintSource). It implements disk.IdleRecorder.
//
// Concurrency contract: a GapTrace is single-goroutine, like the engine it
// observes. RecordIdle is called only from the engine loop of the recording
// run, and NextIdle/Len only after that run has finished (the Oracle replay
// is a separate, later run). The harness never shares one GapTrace across
// concurrent runs — each Oracle ablation builds its own pair of passes —
// so the hot path needs no lock (it used to take a mutex per idle gap;
// TestGapTraceNotSharedAcrossRuns keeps the contract honest under -race).
type GapTrace struct {
	now  func() sim.Time
	gaps map[int][]TracedGap
}

// TracedGap is one recorded idle period of a disk.
type TracedGap struct {
	Start sim.Time // when the gap began
	Gap   sim.Duration
}

// NewGapTrace returns a trace using now() to timestamp recordings (pass
// the engine's Now).
func NewGapTrace(now func() sim.Time) *GapTrace {
	return &GapTrace{now: now, gaps: make(map[int][]TracedGap)}
}

// RecordIdle implements disk.IdleRecorder: the gap ended now, so it began
// at now − gap. Engine goroutine only.
func (t *GapTrace) RecordIdle(d *disk.Disk, gap sim.Duration) {
	t.gaps[d.ID] = append(t.gaps[d.ID], TracedGap{Start: t.now() - gap, Gap: gap})
}

var _ disk.IdleRecorder = (*GapTrace)(nil)

// Len returns the number of recorded gaps for one disk.
func (t *GapTrace) Len(diskID int) int {
	return len(t.gaps[diskID])
}

// NextIdle implements power.HintSource: it returns the recorded gap whose
// start time is closest to now for the disk. Because the oracle run's
// timing drifts slightly from the recording run's, nearest-start matching
// is the right lookup.
func (t *GapTrace) NextIdle(diskID int, now sim.Time) (sim.Duration, bool) {
	gs := t.gaps[diskID]
	if len(gs) == 0 {
		return 0, false
	}
	i := sort.Search(len(gs), func(i int) bool { return gs[i].Start >= now })
	best := -1
	var bestDist sim.Duration
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= len(gs) {
			continue
		}
		d := gs[j].Start - now
		if d < 0 {
			d = -d
		}
		if best == -1 || d < bestDist {
			best, bestDist = j, d
		}
	}
	if best == -1 {
		return 0, false
	}
	return gs[best].Gap, true
}
