module sdds

go 1.22
