// Package knownbad is the multichecker integration fixture: it carries
// exactly one violation per sddsvet analyzer, plus one suppressed line, so
// the driver test can assert the full find-filter-format pipeline.
package knownbad

import (
	"time"

	"sdds/internal/sim"
)

type node struct {
	eng   *sim.Engine
	timer *sim.Event
	count int
}

// simdet: wall clock in (test-scoped) simulation code.
func stamp() int64 {
	return time.Now().UnixNano()
}

// hotalloc: capturing closure on the fire-and-forget path.
func (n *node) arm() {
	n.eng.ScheduleFunc(1, "tick", func(now sim.Time) { n.count++ })
}

// eventretain: parameter event stored into a field.
func (n *node) keep(ev *sim.Event) {
	n.timer = ev
}

// floatorder: reduction ordered by map iteration.
func reduce(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Suppressed: must not reach the driver's output.
func suppressed(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //sddsvet:ignore simdet,floatorder -- fixture: proves end-to-end suppression
	}
	return sum
}
