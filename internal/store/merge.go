package store

import (
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one record read back from a store file: the content key and
// the raw stored JSON value.
type Entry struct {
	Key   string
	Value json.RawMessage
}

// ReadAll returns every intact record in the store file at path, in
// append order, without opening the file for writing. Like Open, it
// tolerates a torn trailing line — the crash kill point of the writing
// process — by returning only the intact prefix; a missing file reads as
// empty. Duplicate keys are returned as-is (callers that care dedup).
func ReadAll(path string) ([]Entry, error) {
	lines, _, err := loadLines(path)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(lines))
	for _, l := range lines {
		out = append(out, Entry{Key: l.Key, Value: l.Value})
	}
	return out, nil
}

// MergeStats summarizes one Merge call.
type MergeStats struct {
	// Files counts source files read (missing files count — they merge as
	// empty, the legitimate state of a shard that never started).
	Files int
	// Entries counts records read across all sources, duplicates included.
	Entries int
	// Added counts records newly written to the destination.
	Added int
	// Dups counts records whose key already held identical bytes — the
	// expected overlap between shards that raced on the same content key.
	Dups int
	// TornBytes totals bytes dropped from torn trailing lines across the
	// sources (recoverable: each source's intact prefix was merged).
	TornBytes int64
}

// Merge folds the records of the source store files at paths into dst,
// in path order then append order — the deterministic merge the sharded
// sweep uses to fold per-shard journals into one canonical store. The
// content-addressed Put semantics make the merge idempotent and
// order-independent in effect: re-merging, or merging shards that
// overlap, adds nothing; a key holding different bytes in two sources is
// an error naming the source and key, because identical requests must
// produce identical results (the determinism invariant).
//
// Sources are read with ReadAll, so a shard journal whose writer was
// killed mid-append merges its intact prefix instead of failing the
// whole merge.
func Merge(dst *Store, paths ...string) (MergeStats, error) {
	var st MergeStats
	for _, path := range paths {
		lines, valid, err := loadLines(path)
		if err != nil {
			return st, fmt.Errorf("store: merge %s: %w", path, err)
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > valid {
			st.TornBytes += fi.Size() - valid
		}
		st.Files++
		for _, e := range lines {
			st.Entries++
			added, err := dst.Add(e.Key, e.Value)
			if err != nil {
				return st, fmt.Errorf("store: merge %s: key %s: %w", path, e.Key, err)
			}
			if added {
				st.Added++
			} else {
				st.Dups++
			}
		}
	}
	return st, nil
}
