package ionode

import (
	"fmt"
	"sort"

	"sdds/internal/cache"
	"sdds/internal/disk"
	"sdds/internal/fault"
	"sdds/internal/probe"
	"sdds/internal/sim"
)

// Config describes one I/O node.
type Config struct {
	// DiskParams configures each member disk (Table II defaults).
	DiskParams disk.Params
	// Members is the number of disks in the node.
	Members int
	// Level is the RAID organization across members.
	Level RAIDLevel
	// CacheBytes is the storage-cache capacity (Table II: 64 MB).
	CacheBytes int64
	// UnitBytes is the stripe-unit / cache-block size (64 KB).
	UnitBytes int64
	// PrefetchDepth is how many sequential units the storage cache
	// prefetches after detecting a stride (AccuSim's server cache does I/O
	// prefetching); 0 disables prefetch.
	PrefetchDepth int
	// CacheHitTime is the service time of a storage-cache hit.
	CacheHitTime sim.Duration
	// PowerAwareCache switches the storage cache from plain LRU to the
	// PA-LRU-style policy (cache.PALRU): evictions prefer blocks whose
	// home disk is awake, protecting blocks that would wake a sleeping
	// disk to refetch (the related-work direction of Zhu et al.).
	PowerAwareCache bool
	// CacheLookahead bounds the PA-LRU eviction scan (0 = default).
	CacheLookahead int
	// WriteBack delays writes in the storage cache and flushes them in
	// batches every FlushEpoch (the delayed-write direction of §VI); zero
	// FlushEpoch with WriteBack set uses 10 s. Write-through (the default)
	// sends every write to the member disks immediately.
	WriteBack  bool
	FlushEpoch sim.Duration
}

// DefaultConfig returns the Table II node: a RAID10 mirror pair, 64 MB
// cache, 64 KB units, shallow sequential prefetch. (Table II lists RAID
// levels 5 and 10; RAID5 is exercised by the sensitivity experiments.)
func DefaultConfig() Config {
	return Config{
		DiskParams:    disk.DefaultParams(),
		Members:       2,
		Level:         RAID10,
		CacheBytes:    64 << 20,
		UnitBytes:     64 << 10,
		PrefetchDepth: 2,
		CacheHitTime:  sim.MilliToTime(0.05),
	}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	if err := c.DiskParams.Validate(); err != nil {
		return err
	}
	switch {
	case c.Members <= 0:
		return fmt.Errorf("ionode: members %d must be positive", c.Members)
	case c.CacheBytes <= 0:
		return fmt.Errorf("ionode: cache %d bytes must be positive", c.CacheBytes)
	case c.UnitBytes <= 0:
		return fmt.Errorf("ionode: unit %d bytes must be positive", c.UnitBytes)
	case c.PrefetchDepth < 0:
		return fmt.Errorf("ionode: prefetch depth %d must be ≥ 0", c.PrefetchDepth)
	case c.CacheHitTime < 0:
		return fmt.Errorf("ionode: negative cache hit time")
	case c.FlushEpoch < 0:
		return fmt.Errorf("ionode: negative flush epoch")
	}
	// Dry-run the mapper to surface level/member mismatches.
	if _, err := raidMap(c.Level, c.Members, 0, 0, 1, false, int64(c.DiskParams.SectorSize), c.UnitBytes); err != nil {
		return err
	}
	return nil
}

// Stats aggregates node-level counters.
type Stats struct {
	Reads          int64
	Writes         int64
	CacheHits      int64
	CacheMisses    int64
	PrefetchIssued int64
	BytesRead      int64
	BytesWritten   int64
	Flushes        int64
	// Fault-injection counters (all zero without an injector).
	Retries          int64 // member-disk resubmissions after transient errors
	RetriesExhausted int64 // requests that failed even after MaxRetries
	Stalls           int64 // injected node stalls
	FailedUnits      int64 // unit fetches abandoned after exhausted retries
}

// Node is one I/O node: member disks behind a storage cache.
type Node struct {
	ID    int
	eng   *sim.Engine
	cfg   Config
	disks []*disk.Disk
	cache cache.Store

	// Stride prefetcher state (per file).
	lastUnit  map[int]int64
	lastDelta map[int]int64
	inflight  map[cache.Key][]func(sim.Time, bool) // miss coalescing

	// Write-back state: dirty units awaiting the epoch flush.
	dirty      map[cache.Key]int64 // key → bytes pending
	flushTimer bool

	// pr is the engine's flight recorder, cached at construction.
	pr *probe.Probe
	// flt is the engine's fault injector, cached like the probe; nil-safe.
	flt *fault.Injector

	// okCb completes a fault-free request: arg is the caller's
	// done func(sim.Time, bool). Bound once so the cache-hit and
	// write-back-ack paths schedule without a per-call closure.
	okCb sim.ArgHandler

	stats Stats
}

// New builds an I/O node with freshly spun-up member disks.
func New(eng *sim.Engine, id int, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WriteBack && cfg.FlushEpoch == 0 {
		cfg.FlushEpoch = 10 * sim.Second
	}
	n := &Node{
		ID:        id,
		eng:       eng,
		cfg:       cfg,
		lastUnit:  make(map[int]int64),
		lastDelta: make(map[int]int64),
		inflight:  make(map[cache.Key][]func(sim.Time, bool)),
		dirty:     make(map[cache.Key]int64),
		pr:        eng.Probe(),
		flt:       eng.Faults(),
	}
	n.okCb = n.onOK
	for i := 0; i < cfg.Members; i++ {
		d, err := disk.New(eng, id*100+i, cfg.DiskParams)
		if err != nil {
			return nil, err
		}
		n.disks = append(n.disks, d)
	}
	if cfg.PowerAwareCache {
		pal, err := cache.NewPALRU(cfg.CacheBytes, n.diskAwake, cfg.CacheLookahead)
		if err != nil {
			return nil, err
		}
		n.cache = pal
	} else {
		n.cache = cache.MustNew(cfg.CacheBytes)
	}
	return n, nil
}

// MustNew is New, panicking on error.
func MustNew(eng *sim.Engine, id int, cfg Config) *Node {
	n, err := New(eng, id, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// diskAwake reports whether the data disk holding a cached block is
// spinning (the PA-LRU activity callback): blocks of sleeping disks are
// protected from eviction.
func (n *Node) diskAwake(k cache.Key) bool {
	ios, err := raidMap(n.cfg.Level, n.cfg.Members, k.Block, 0, 1, false,
		int64(n.cfg.DiskParams.SectorSize), n.cfg.UnitBytes)
	if err != nil || len(ios) == 0 {
		return true
	}
	d := ios[0].disk
	if d < 0 || d >= len(n.disks) {
		return true
	}
	return n.disks[d].State().Spinning()
}

// Disks exposes the member disks (for attaching power policies and
// recorders). Callers must not mutate the slice.
func (n *Node) Disks() []*disk.Disk { return n.disks }

// Config returns the node configuration.
func (n *Node) Config() Config { return n.cfg }

// Stats returns a copy of the counters.
func (n *Node) Stats() Stats { return n.stats }

// CacheStats returns the storage cache's hit/miss/eviction counters.
func (n *Node) CacheStats() (hits, misses, evictions int64) { return n.cache.Stats() }

// EnergyJoules sums member-disk energy up to now.
func (n *Node) EnergyJoules(now sim.Time) float64 {
	var j float64
	for _, d := range n.disks {
		j += d.Energy().TotalJoules(now)
	}
	return j
}

// FlushIdleGaps closes trailing idle gaps on all members at end of run.
func (n *Node) FlushIdleGaps(now sim.Time) {
	for _, d := range n.disks {
		d.FlushIdleGap(now)
	}
}

// onOK completes a request that carried no fault: arg is the caller's
// done callback. Bound once (okCb) so success paths schedule without
// allocating a closure.
func (n *Node) onOK(now sim.Time, arg any) { arg.(func(sim.Time, bool))(now, true) }

// Read serves a read of [offset, offset+length) within global stripe unit
// `unit` of file `file`, invoking done at completion with ok reporting
// whether the data was delivered (ok=false only under fault injection,
// after every bounded retry was exhausted). Storage-cache hits complete in
// CacheHitTime; misses read the whole unit from the member disks (filling
// the cache) and trigger stride prefetch.
func (n *Node) Read(file int, unit, offset, length int64, done func(now sim.Time, ok bool)) error {
	if length <= 0 || offset < 0 || offset+length > n.cfg.UnitBytes {
		return fmt.Errorf("ionode %d: bad read range unit=%d off=%d len=%d", n.ID, unit, offset, length)
	}
	// Injected node stall: the node accepts the request only after the
	// stall elapses, then serves it normally.
	if n.flt.Hit(fault.SiteNodeStall) {
		n.stats.Stalls++
		n.pr.Emit(probe.KindFault, int32(fault.SiteNodeStall), int64(n.eng.Now()), int64(n.ID))
		//sddsvet:ignore hotalloc -- fault path: one closure per injected stall
		n.eng.ScheduleFunc(sim.Duration(n.flt.NodeStallUS()), "ionode.stall", func(now sim.Time) {
			if n.readNow(file, unit, offset, length, done) != nil {
				done(now, false) // validated config: unreachable raidMap error
			}
		})
		return nil
	}
	return n.readNow(file, unit, offset, length, done)
}

// readNow is Read past the stall gate.
func (n *Node) readNow(file int, unit, offset, length int64, done func(now sim.Time, ok bool)) error {
	n.stats.Reads++
	n.stats.BytesRead += length
	key := cache.Key{File: file, Block: unit}
	if _, ok := n.cache.Get(key); ok {
		n.stats.CacheHits++
		n.pr.Emit(probe.KindCacheHit, int32(n.ID), int64(n.eng.Now()), unit)
		n.eng.ScheduleArg(n.cfg.CacheHitTime, "ionode.hit", n.okCb, done)
		n.prefetch(file, unit)
		return nil
	}
	n.stats.CacheMisses++
	n.pr.Emit(probe.KindCacheMiss, int32(n.ID), int64(n.eng.Now()), unit)
	if waiters, ok := n.inflight[key]; ok {
		// Coalesce with an in-flight fetch of the same unit.
		n.inflight[key] = append(waiters, done)
		return nil
	}
	n.inflight[key] = []func(sim.Time, bool){done}
	if err := n.fetchUnit(file, unit, func(now sim.Time, ok bool) {
		waiters := n.inflight[key]
		delete(n.inflight, key)
		if ok {
			n.cache.Put(key, n.cfg.UnitBytes)
		} else {
			// Exhausted retries: the unit never arrived. Do not cache;
			// waiters degrade (the middleware re-reads or fails the chunk).
			n.stats.FailedUnits++
		}
		for _, w := range waiters {
			w(now, ok)
		}
	}); err != nil {
		delete(n.inflight, key)
		return err
	}
	n.prefetch(file, unit)
	return nil
}

// Write stores [offset, offset+length) of unit `unit` (write-through: data
// and parity/mirror go to the member disks; the unit is installed in the
// cache). ok=false only under fault injection with retries exhausted.
func (n *Node) Write(file int, unit, offset, length int64, done func(now sim.Time, ok bool)) error {
	if length <= 0 || offset < 0 || offset+length > n.cfg.UnitBytes {
		return fmt.Errorf("ionode %d: bad write range unit=%d off=%d len=%d", n.ID, unit, offset, length)
	}
	if n.flt.Hit(fault.SiteNodeStall) {
		n.stats.Stalls++
		n.pr.Emit(probe.KindFault, int32(fault.SiteNodeStall), int64(n.eng.Now()), int64(n.ID))
		//sddsvet:ignore hotalloc -- fault path: one closure per injected stall
		n.eng.ScheduleFunc(sim.Duration(n.flt.NodeStallUS()), "ionode.stall", func(now sim.Time) {
			if n.writeNow(file, unit, offset, length, done) != nil {
				done(now, false) // validated config: unreachable raidMap error
			}
		})
		return nil
	}
	return n.writeNow(file, unit, offset, length, done)
}

// writeNow is Write past the stall gate.
func (n *Node) writeNow(file int, unit, offset, length int64, done func(now sim.Time, ok bool)) error {
	n.stats.Writes++
	n.stats.BytesWritten += length
	key := cache.Key{File: file, Block: unit}
	n.cache.Put(key, n.cfg.UnitBytes)
	if n.cfg.WriteBack {
		// Absorb the write; it reaches the member disks at the epoch
		// flush. The caller completes after the cache insertion.
		if prev := n.dirty[key]; length > prev {
			n.dirty[key] = length
		}
		n.armFlush()
		n.eng.ScheduleArg(n.cfg.CacheHitTime, "ionode.wb-ack", n.okCb, done)
		return nil
	}
	ios, err := raidMap(n.cfg.Level, n.cfg.Members, unit, offset, length, true,
		int64(n.cfg.DiskParams.SectorSize), n.cfg.UnitBytes)
	if err != nil {
		return err
	}
	return n.issue(ios, done)
}

// armFlush schedules the next epoch flush if one is not pending.
func (n *Node) armFlush() {
	if n.flushTimer {
		return
	}
	n.flushTimer = true
	//sddsvet:ignore hotalloc -- one closure per flush epoch (seconds apart), not per request
	n.eng.ScheduleFunc(n.cfg.FlushEpoch, "ionode.flush", func(now sim.Time) {
		n.flushTimer = false
		n.Flush(now)
		if len(n.dirty) > 0 {
			n.armFlush()
		}
	})
}

// Flush writes all dirty units to the member disks (write-back mode). It is
// also called at end of run so no dirty data is silently dropped.
func (n *Node) Flush(now sim.Time) {
	if len(n.dirty) == 0 {
		return
	}
	batch := n.dirty
	n.dirty = make(map[cache.Key]int64)
	// Issue in sorted key order: the member disks' queueing — and therefore
	// seek distances, idle gaps, and energy — depends on arrival order, so
	// iterating the map directly would leak Go's randomized iteration order
	// into the golden-compared results.
	keys := make([]cache.Key, 0, len(batch))
	for key := range batch {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Block < keys[j].Block
	})
	for _, key := range keys {
		ios, err := raidMap(n.cfg.Level, n.cfg.Members, key.Block, 0, batch[key], true,
			int64(n.cfg.DiskParams.SectorSize), n.cfg.UnitBytes)
		if err != nil {
			continue
		}
		n.stats.Flushes++
		if err := n.issue(ios, func(sim.Time, bool) {}); err != nil {
			continue
		}
	}
}

// DirtyUnits reports how many units await the next flush.
func (n *Node) DirtyUnits() int { return len(n.dirty) }

// fetchUnit reads an entire stripe unit from the member disks.
func (n *Node) fetchUnit(file int, unit int64, done func(now sim.Time, ok bool)) error {
	ios, err := raidMap(n.cfg.Level, n.cfg.Members, unit, 0, n.cfg.UnitBytes, false,
		int64(n.cfg.DiskParams.SectorSize), n.cfg.UnitBytes)
	if err != nil {
		return err
	}
	return n.issue(ios, done)
}

// issue submits the member-disk operations and calls done when the last
// completes. A member request surfacing an injected transient error is
// resubmitted after an exponential backoff (RetryLatency << attempt),
// bounded by the injector's MaxRetries; a request that fails every retry
// marks the whole batch failed (ok=false) — degradation, never a hang.
func (n *Node) issue(ios []diskIO, done func(now sim.Time, ok bool)) error {
	remaining := len(ios)
	if remaining == 0 {
		n.eng.ScheduleArg(0, "ionode.noop", n.okCb, done)
		return nil
	}
	allOK := true
	for _, io := range ios {
		if io.disk < 0 || io.disk >= len(n.disks) {
			return fmt.Errorf("ionode %d: mapped to invalid member %d", n.ID, io.disk)
		}
		op := disk.OpRead
		if io.write {
			op = disk.OpWrite
		}
		sector := io.sector
		if max := n.cfg.DiskParams.TotalSectors(); sector >= max {
			sector = sector % max // wrap for scaled-down capacities
		}
		d := n.disks[io.disk]
		attempts := 0
		var onDone func(now sim.Time, r *disk.Request)
		onDone = func(now sim.Time, r *disk.Request) {
			if r.Err != nil && attempts < n.flt.MaxRetries() {
				attempts++
				n.stats.Retries++
				n.pr.Emit(probe.KindRetry, int32(n.ID), int64(now), int64(attempts))
				backoff := sim.Duration(n.flt.RetryLatencyUS()) << (attempts - 1)
				//sddsvet:ignore hotalloc -- fault path: one resubmit closure per injected transient error
				n.eng.ScheduleFunc(backoff, "ionode.retry", func(at sim.Time) {
					if d.Submit(r) != nil {
						// Unreachable on a validated config; degrade
						// rather than retry forever.
						attempts = n.flt.MaxRetries()
						onDone(at, r)
					}
				})
				return
			}
			if r.Err != nil {
				n.stats.RetriesExhausted++
				allOK = false
			}
			remaining--
			if remaining == 0 {
				done(now, allOK)
			}
		}
		req := &disk.Request{
			Op:     op,
			Sector: sector,
			Bytes:  io.bytes,
			Done:   onDone,
		}
		if err := d.Submit(req); err != nil {
			return err
		}
	}
	return nil
}

// prefetch runs the per-file stride detector and fetches ahead on a match.
func (n *Node) prefetch(file int, unit int64) {
	if n.cfg.PrefetchDepth == 0 {
		n.lastUnit[file] = unit
		return
	}
	prev, seen := n.lastUnit[file]
	if seen {
		delta := unit - prev
		if delta != 0 && delta == n.lastDelta[file] {
			for k := 1; k <= n.cfg.PrefetchDepth; k++ {
				next := unit + delta*int64(k)
				if next < 0 {
					break
				}
				key := cache.Key{File: file, Block: next}
				if n.cache.Contains(key) {
					continue
				}
				if _, busy := n.inflight[key]; busy {
					continue
				}
				n.inflight[key] = nil
				n.stats.PrefetchIssued++
				n.pr.Emit(probe.KindPrefetch, int32(n.ID), int64(n.eng.Now()), next)
				if err := n.fetchUnit(file, next, func(now sim.Time, ok bool) {
					waiters := n.inflight[key]
					delete(n.inflight, key)
					if ok {
						n.cache.Put(key, n.cfg.UnitBytes)
					} else {
						n.stats.FailedUnits++
					}
					for _, w := range waiters {
						w(now, ok)
					}
				}); err != nil {
					delete(n.inflight, key)
					break
				}
			}
		}
		n.lastDelta[file] = delta
	}
	n.lastUnit[file] = unit
}
