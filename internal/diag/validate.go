package diag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Report is the result of validating one bundle: its parsed manifest, the
// bundle files loaded into memory (so callers can run deeper checks —
// trace validation, request replay — without re-reading the disk), and
// one line per integrity problem. An empty Problems slice means the
// bundle's bytes match its manifest and its ID matches its content.
type Report struct {
	Path     string
	Manifest Manifest
	Files    map[string][]byte
	Problems []string
}

// OK reports whether validation found no problems.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// Validate opens a bundle — either a bundle directory or a bundle
// .tar.gz — and checks its integrity: every manifest entry exists with
// the recorded size and SHA-256, no unlisted payload files are present,
// and the bundle ID matches the content hash recomputed from the files.
// Integrity violations land in Report.Problems; only failures to read or
// parse the bundle at all return an error.
func Validate(path string) (*Report, error) {
	files, err := loadBundle(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{Path: path, Files: files}
	manData, ok := files[ManifestName]
	if !ok {
		return nil, fmt.Errorf("diag: %s: no %s", path, ManifestName)
	}
	if err := json.Unmarshal(manData, &rep.Manifest); err != nil {
		return nil, fmt.Errorf("diag: %s: %s: %w", path, ManifestName, err)
	}
	man := rep.Manifest
	if man.Version != ManifestVersion {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("manifest version %d, this tool understands %d", man.Version, ManifestVersion))
	}
	listed := make(map[string]bool, len(man.Files))
	for _, fe := range man.Files {
		listed[fe.Name] = true
		data, ok := files[fe.Name]
		if !ok {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: listed in manifest but missing", fe.Name))
			continue
		}
		if int64(len(data)) != fe.Bytes {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("%s: %d bytes, manifest says %d", fe.Name, len(data), fe.Bytes))
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != fe.SHA256 {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("%s: sha256 %s, manifest says %s", fe.Name, got, fe.SHA256))
		}
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name != ManifestName && !listed[name] {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: present but not in manifest", name))
		}
	}
	if got := bundleID(man.Files); got != man.ID {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("bundle id %s does not match content hash %s", man.ID, got))
	}
	return rep, nil
}

// loadBundle reads a bundle directory or .tar.gz into memory.
func loadBundle(path string) (map[string][]byte, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	if !fi.IsDir() {
		if strings.HasSuffix(path, ".tar.gz") || strings.HasSuffix(path, ".tgz") {
			return readTarGz(path)
		}
		return nil, fmt.Errorf("diag: %s: not a bundle directory or .tar.gz", path)
	}
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	files := make(map[string][]byte, len(ents))
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(path, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("diag: %w", err)
		}
		files[e.Name()] = data
	}
	return files, nil
}
